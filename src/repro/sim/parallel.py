"""Sharded execution of independent simulations across worker processes.

The event core (:mod:`repro.sim.kernel`) is single-threaded by design —
one heap, one clock, strict ``(time, seq)`` order. Fleet- and
serving-layer workloads, however, are collections of *independent*
simulations: each chaos scenario derives its own seed stream, each
service-time measurement builds its own accelerator. This module runs
such collections across forked worker processes and merges the results
back in submission order.

Bit-reproducibility contract (see docs/sim-internals.md):

- every shard executes the *same code path* a serial run would, on a
  process image forked before any task ran, so each task's result is
  bitwise the task's serial result;
- the merge step reassembles results by submission index, never by
  completion order, so the merged list is byte-identical to the serial
  list — only wall-clock changes;
- anything that would break that contract (platforms without ``fork``,
  a single worker, one task, ``REPRO_SIM_WORKERS=1``) degrades to plain
  serial execution of the identical code path.

Workers are plain ``os.fork`` children writing one pickle to a pipe and
exiting via ``os._exit`` — no pool machinery, no spawn-mode pickling of
callables, a few milliseconds of overhead per worker.
"""

from __future__ import annotations

import gc
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field

__all__ = [
    "ShardError",
    "ShardStats",
    "default_workers",
    "export_shard_metrics",
    "prewarm_measurements",
    "run_sharded",
    "run_sharded_with_stats",
]

#: Environment override for the worker count; ``1`` forces serial.
ENV_WORKERS = "REPRO_SIM_WORKERS"

#: Soft cap when sizing from ``os.cpu_count`` — sharded simulations are
#: CPU-bound, so oversubscription only adds scheduler noise.
DEFAULT_MAX_WORKERS = 8


class ShardError(RuntimeError):
    """A worker process failed; carries the worker's traceback text."""


#: Stats of the most recent sharded run in this process, for the
#: ``repro profile`` engine table (:func:`export_shard_metrics`).
LAST_SHARD_STATS: "ShardStats | None" = None


def export_shard_metrics(registry) -> None:
    """Mirror the last sharded run into a metrics registry as gauges."""
    stats = LAST_SHARD_STATS
    if stats is None:
        return
    registry.gauge(
        "sim_shard_workers", "worker count of the last sharded run"
    ).set(stats.workers)
    wall = registry.gauge(
        "sim_shard_wall_seconds",
        "per-shard wall time of the last sharded run", unit="seconds",
    )
    for shard in stats.shards:
        wall.set(shard["wall_seconds"], shard=str(shard["worker"]))


@dataclass
class ShardStats:
    """How one sharded run was executed (the ``repro profile`` table)."""

    workers: int = 1
    forked: bool = False
    shards: list[dict] = field(default_factory=list)
    """One row per shard: ``{"worker", "items", "wall_seconds"}``."""

    @property
    def max_shard_wall_seconds(self) -> float:
        return max((s["wall_seconds"] for s in self.shards), default=0.0)


def default_workers(tasks: int, workers: int | None = None) -> int:
    """Resolve the worker count for ``tasks`` independent tasks.

    Explicit ``workers`` wins, then the ``REPRO_SIM_WORKERS`` environment
    variable, then ``min(tasks, cpu_count, DEFAULT_MAX_WORKERS)``. The
    result is clamped to ``[1, tasks]`` and collapses to 1 when the
    platform cannot fork.
    """
    if workers is None:
        env = os.environ.get(ENV_WORKERS, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{ENV_WORKERS}={env!r} is not an integer"
                ) from None
    if workers is None:
        try:
            cpus = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            cpus = os.cpu_count() or 1
        workers = min(tasks, cpus, DEFAULT_MAX_WORKERS)
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only repo
        return 1
    return max(1, min(workers, tasks))


def _child_main(fn, indexed_items, write_fd: int) -> None:
    """Worker body: run the shard, pickle one reply, hard-exit.

    ``os._exit`` skips atexit hooks and stream flushing on purpose: the
    child is a forked copy of an arbitrary parent (pytest, the CLI) and
    must not replay the parent's teardown side effects.
    """
    started = time.perf_counter()
    try:
        # The child lives for one shard and then hard-exits; cycle
        # collection only burns time and dirties copy-on-write pages.
        gc.disable()
        results = [(index, fn(item)) for index, item in indexed_items]
        payload = ("ok", results, time.perf_counter() - started)
    except BaseException as error:  # noqa: BLE001 - forwarded to parent
        payload = ("error", repr(error), traceback.format_exc())
    with os.fdopen(write_fd, "wb") as pipe:
        pickle.dump(payload, pipe, protocol=pickle.HIGHEST_PROTOCOL)
        pipe.flush()
    os._exit(0)


def run_sharded_with_stats(fn, items, workers: int | None = None):
    """Map ``fn`` over ``items``; returns ``(results, ShardStats)``.

    Results are in submission order regardless of shard completion
    order. Tasks are dealt round-robin across shards so heterogeneous
    task costs balance. Serial fallback (1 worker / 1 task / no fork)
    runs the identical ``[fn(item) for item in items]`` path.
    """
    global LAST_SHARD_STATS
    items = list(items)
    stats = ShardStats()
    if not items:
        return [], stats
    LAST_SHARD_STATS = stats
    count = default_workers(len(items), workers)
    stats.workers = count
    if count <= 1 or len(items) <= 1:
        started = time.perf_counter()
        results = [fn(item) for item in items]
        stats.shards.append(
            {
                "worker": 0,
                "items": len(items),
                "wall_seconds": time.perf_counter() - started,
            }
        )
        return results, stats

    stats.forked = True
    indexed = list(enumerate(items))
    shards = [indexed[worker::count] for worker in range(count)]
    children: list[tuple[int, int, int]] = []  # (worker, pid, read_fd)
    for worker, shard in enumerate(shards):
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            os.close(read_fd)
            _child_main(fn, shard, write_fd)
            raise AssertionError("unreachable")  # pragma: no cover
        os.close(write_fd)
        children.append((worker, pid, read_fd))

    results: list = [None] * len(items)
    failure: tuple[str, str] | None = None
    for worker, pid, read_fd in children:
        with os.fdopen(read_fd, "rb") as pipe:
            try:
                payload = pickle.load(pipe)
            except EOFError:
                payload = ("error", "worker died before replying", "")
        os.waitpid(pid, 0)
        if payload[0] == "ok":
            _, shard_results, wall = payload
            for index, result in shard_results:
                results[index] = result
            stats.shards.append(
                {
                    "worker": worker,
                    "items": len(shard_results),
                    "wall_seconds": wall,
                }
            )
        elif failure is None:
            failure = (payload[1], payload[2])
    if failure is not None:
        summary, trace_text = failure
        raise ShardError(
            f"sharded worker failed: {summary}\n{trace_text}".rstrip()
        )
    return results, stats


def run_sharded(fn, items, workers: int | None = None):
    """Like :func:`run_sharded_with_stats` but returns results only."""
    results, _stats = run_sharded_with_stats(fn, items, workers)
    return results


def _measure_spec(spec):
    """Worker task: one (model, groups) detailed-simulator measurement.

    The memo is bypassed on purpose: the worker's cache is a forked
    throwaway copy, and on the serial fallback the caller does the
    cache bookkeeping itself — double-counting a lookup here would make
    sharded and serial cache statistics diverge.
    """
    from repro.serving.server import measure_service_time_ns

    model, groups = spec
    return measure_service_time_ns(model, groups, use_cache=False)


def prewarm_measurements(
    specs, workers: int | None = None
) -> dict[tuple[str, int], float]:
    """Fill the measurement memo for ``(model, groups)`` specs in parallel.

    Servers and fleets measure tenants one after another; each
    measurement is an independent simulation, so the cold ones can run
    in worker processes. Results land in
    :data:`repro.caching.MEASUREMENT_CACHE` in the *parent*, exactly as
    serial measurement would have left them (the measurement is
    deterministic — see its docstring) and with the same statistics:
    one recorded miss per cold spec, regardless of where it ran.
    Returns ``spec -> latency_ns`` for the specs this call measured.
    """
    from repro.caching import MEASUREMENT_CACHE, MeasurementCache

    ordered: list[tuple[str, int]] = []
    for model, groups in specs:
        spec = (model, int(groups))
        if spec not in ordered:
            ordered.append(spec)
    warmed: dict[tuple[str, int], float] = {}
    todo: list[tuple[str, int]] = []
    for spec in ordered:
        key = MeasurementCache.key_for(*spec)
        if key in MEASUREMENT_CACHE:
            # Deliberately not a stats-counting get: the caller's own
            # measure_service_time_ns call right after us records the hit.
            continue
        todo.append(spec)
    if todo:
        for spec, latency_ns in zip(todo, run_sharded(_measure_spec, todo, workers)):
            MEASUREMENT_CACHE.put(MeasurementCache.key_for(*spec), latency_ns)
            # The membership probe above was this spec's cold lookup;
            # record it so sharded and serial stats stay identical.
            MEASUREMENT_CACHE.stats.misses += 1
            warmed[spec] = latency_ns
    return warmed
