"""Execution tracing for the performance simulator.

A :class:`Trace` collects timed *intervals* (an engine doing something from
``start`` to ``end``) and named *counters*. The profiler and the power model
both consume traces: the profiler to report per-operator latency, the power
model to reconstruct per-engine busy/stall duty cycles inside DVFS
observation windows.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Interval:
    """One engine activity: ``engine`` was busy on ``label`` in [start, end)."""

    engine: str
    label: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if math.isnan(self.start) or math.isnan(self.end):
            raise ValueError(f"interval has NaN endpoints: {self}")
        if self.start < 0.0:
            raise ValueError(f"interval starts before time zero: {self}")
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """Append-only record of simulation activity."""

    intervals: list[Interval] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def record(self, engine: str, label: str, start: float, end: float) -> None:
        self.intervals.append(Interval(engine, label, start, end))

    def bump(self, counter: str, amount: float = 1.0) -> None:
        self.counters[counter] += amount

    def engines(self) -> set[str]:
        return {interval.engine for interval in self.intervals}

    def busy_time(self, engine: str, start: float = 0.0, end: float | None = None) -> float:
        """Total time ``engine`` spent busy inside the [start, end) window.

        Intervals are clipped to the window; overlapping intervals on the
        same engine are merged so double-booked time is not counted twice.
        """
        if end is None:
            end = self.end_time()
        clipped = sorted(
            (max(interval.start, start), min(interval.end, end))
            for interval in self.intervals
            if interval.engine == engine
            and interval.end > start
            and interval.start < end
        )
        busy = 0.0
        cursor = start
        for lo, hi in clipped:
            lo = max(lo, cursor)
            if hi > lo:
                busy += hi - lo
                cursor = hi
        return busy

    def utilization(self, engine: str, start: float = 0.0, end: float | None = None) -> float:
        """Busy fraction of ``engine`` over the window; 0 for an empty window."""
        if end is None:
            end = self.end_time()
        span = end - start
        if span <= 0:
            return 0.0
        return self.busy_time(engine, start, end) / span

    def end_time(self) -> float:
        if not self.intervals:
            return 0.0
        return max(interval.end for interval in self.intervals)

    def by_label(self) -> dict[str, float]:
        """Aggregate busy duration per label (e.g. per operator name)."""
        totals: dict[str, float] = defaultdict(float)
        for interval in self.intervals:
            totals[interval.label] += interval.duration
        return dict(totals)
