"""Execution tracing for the performance simulator.

A :class:`Trace` collects timed *intervals* (an engine doing something from
``start`` to ``end``) and named *counters*. The profiler and the power model
both consume traces: the profiler to report per-operator latency, the power
model to reconstruct per-engine busy/stall duty cycles inside DVFS
observation windows.

Vectorized interval queries
---------------------------

The power manager asks ``busy_time`` / ``utilization`` questions about a
sliding window once per DVFS observation window, per engine — thousands of
queries over a trace that keeps growing. The original implementation
scanned **every** interval in the trace per query (quadratic over a run;
it dominated end-to-end launch wall time). The trace now keeps a
*columnar* per-engine timeline (parallel start/end columns, grown
append-only) with a monotone skip pointer, so one query touches only that
engine's still-relevant intervals; large candidate sets run the
overlap/clip/merge as a handful of vectorized NumPy array operations,
small ones as a scalar merge over the pruned slice (see
``_VECTOR_CUTOFF``).

Bit-reproducibility contract (docs/sim-internals.md): both query paths
perform **exactly** the same IEEE-754 operations as the reference scan —
clip by ``max``/``min``, advance the merge cursor by running ``max``, and
accumulate positive segment lengths left-to-right in the same
``(start, end)`` lexicographic order — so their results are bit-identical,
not merely close. ``_busy_time_reference`` retains the original scan as
the pinned oracle; without NumPy every query takes the scalar path.

Interval ordering: intervals carry a per-trace ``seq`` assigned at record
time, and compare by ``(start, end, seq)`` — a total order defined purely
by time and sequence, never by object identity, so sorting or merging
interval streams (e.g. the sharded parallel runner's trace merge) is
deterministic across processes and runs.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from dataclasses import dataclass, field

try:  # NumPy backs the vectorized fast path; the trace works without it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via _busy_time_reference
    np = None


class Interval:
    """One engine activity: ``engine`` was busy on ``label`` in [start, end).

    ``seq`` is the interval's position in its trace's record order (0 for
    hand-built intervals). Intervals are immutable value objects with a
    total order by ``(start, end, seq)``.
    """

    __slots__ = ("engine", "label", "start", "end", "seq")

    def __init__(
        self, engine: str, label: str, start: float, end: float, seq: int = 0
    ) -> None:
        if start != start or end != end:  # NaN
            raise ValueError(
                f"interval has NaN endpoints: "
                f"Interval({engine!r}, {label!r}, {start}, {end})"
            )
        if start < 0.0:
            raise ValueError(
                f"interval starts before time zero: "
                f"Interval({engine!r}, {label!r}, {start}, {end})"
            )
        if end < start:
            raise ValueError(
                f"interval ends before it starts: "
                f"Interval({engine!r}, {label!r}, {start}, {end})"
            )
        self.engine = engine
        self.label = label
        self.start = start
        self.end = end
        self.seq = seq

    @property
    def duration(self) -> float:
        return self.end - self.start

    def _key(self):
        return (self.start, self.end, self.seq)

    def __lt__(self, other: "Interval") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Interval") -> bool:
        return self._key() <= other._key()

    def __eq__(self, other) -> bool:
        if isinstance(other, Interval):
            return (
                self.engine == other.engine
                and self.label == other.label
                and self.start == other.start
                and self.end == other.end
                and self.seq == other.seq
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.engine, self.label, self.start, self.end, self.seq))

    def __repr__(self) -> str:
        return (
            f"Interval(engine={self.engine!r}, label={self.label!r}, "
            f"start={self.start}, end={self.end}, seq={self.seq})"
        )


#: candidate-set size at which a window query switches from the scalar
#: merge to the NumPy batch: below this, fixed per-call array overhead
#: outweighs the vector win (both paths are bit-identical to the
#: reference scan, so the cutoff is purely a speed knob).
_VECTOR_CUTOFF = 64


class _EngineTimeline:
    """Columnar (start, end) store for one engine's intervals.

    Append-only, in record order: Python lists always, plus mirrored
    capacity-doubling NumPy buffers (when NumPy is available) for the
    vectorized batch path.

    Window queries keep a *monotone skip pointer*: the power manager asks
    about consecutive non-overlapping windows with ever-increasing
    ``start``, so any prefix of intervals whose ``end <= start`` can never
    overlap this or a later window and is skipped permanently. A query
    whose ``start`` moves backwards (profiler-style full-range query)
    resets the pointer — always correct, merely less pruned. Skipped
    intervals would have failed the overlap test anyway, so pruning never
    changes the candidate set, only how fast it is found.
    """

    __slots__ = (
        "size", "_starts", "_ends", "_np_starts", "_np_ends",
        "_skip", "_skip_start", "scalar_queries", "vector_queries",
    )

    def __init__(self) -> None:
        self.size = 0
        self._starts: list[float] = []
        self._ends: list[float] = []
        self._skip = 0
        self._skip_start = 0.0
        self.scalar_queries = 0
        self.vector_queries = 0
        if np is not None:
            self._np_starts = np.empty(16, dtype=np.float64)
            self._np_ends = np.empty(16, dtype=np.float64)
        else:  # pragma: no cover - no-NumPy fallback
            self._np_starts = None
            self._np_ends = None

    def add(self, start: float, end: float) -> None:
        self._starts.append(start)
        self._ends.append(end)
        size = self.size
        if self._np_starts is not None:
            if size == len(self._np_starts):
                grown = np.empty(size * 2, dtype=np.float64)
                grown[:size] = self._np_starts
                self._np_starts = grown
                grown = np.empty(size * 2, dtype=np.float64)
                grown[:size] = self._np_ends
                self._np_ends = grown
            self._np_starts[size] = start
            self._np_ends[size] = end
        self.size = size + 1

    def busy_time(self, start: float, end: float) -> float:
        """Merged busy time inside [start, end) — bit-identical to the
        reference scan (same clip, same sort order, same left-to-right
        accumulation), via either the scalar or the NumPy batch path."""
        size = self.size
        ends = self._ends
        if start >= self._skip_start:
            ptr = self._skip
        else:
            ptr = 0
        while ptr < size and ends[ptr] <= start:
            ptr += 1
        self._skip = ptr
        self._skip_start = start
        if ptr == size:
            return 0.0
        if np is not None and size - ptr > _VECTOR_CUTOFF:
            return self._busy_time_vector(ptr, start, end)
        # Scalar path: the reference merge over the surviving candidates.
        self.scalar_queries += 1
        starts = self._starts
        clipped = []
        for index in range(ptr, size):
            hi = ends[index]
            if hi > start:
                lo = starts[index]
                if lo < end:
                    clipped.append(
                        (lo if lo > start else start, hi if hi < end else end)
                    )
        clipped.sort()
        busy = 0.0
        cursor = start
        for lo, hi in clipped:
            if lo < cursor:
                lo = cursor
            if hi > lo:
                busy += hi - lo
                cursor = hi
        return busy

    def _busy_time_vector(self, ptr: int, start: float, end: float) -> float:
        """NumPy batch: overlap test, clip, merge as array operations."""
        self.vector_queries += 1
        starts = self._np_starts[ptr:self.size]
        ends = self._np_ends[ptr:self.size]
        mask = (ends > start) & (starts < end)
        if not mask.any():
            return 0.0
        los = np.maximum(starts[mask], start)
        his = np.minimum(ends[mask], end)
        order = np.lexsort((his, los))  # == sorted(zip(los, his)), stable
        los = los[order]
        his = his[order]
        # reference merge: cursor_i = max(window start, max(his[:i])) —
        # uncounted segments never move the cursor backwards, so the
        # running max is exactly the reference cursor.
        cursor = np.empty_like(his)
        cursor[0] = start
        if len(his) > 1:
            np.maximum.accumulate(his[:-1], out=cursor[1:])
        effective = np.maximum(los, cursor)
        gains = his - effective
        busy = 0.0
        for gain in gains[gains > 0.0].tolist():
            busy += gain
        return busy


@dataclass
class Trace:
    """Append-only record of simulation activity."""

    intervals: list[Interval] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def __post_init__(self) -> None:
        self._timelines: dict[str, _EngineTimeline] = {}
        self._max_end = 0.0
        for interval in self.intervals:
            self._index(interval.engine, interval.start, interval.end)

    def _index(self, engine: str, start: float, end: float) -> None:
        timeline = self._timelines.get(engine)
        if timeline is None:
            timeline = self._timelines[engine] = _EngineTimeline()
        timeline.add(start, end)
        if end > self._max_end:
            self._max_end = end

    def record(self, engine: str, label: str, start: float, end: float) -> None:
        # intern the engine/label strings: call sites build them with
        # f-strings per event, and interning collapses those to shared
        # objects (pointer-fast dict lookups, no per-record string churn).
        engine = sys.intern(engine)
        intervals = self.intervals
        intervals.append(
            Interval(engine, sys.intern(label), start, end, seq=len(intervals))
        )
        self._index(engine, start, end)

    def bump(self, counter: str, amount: float = 1.0) -> None:
        self.counters[counter] += amount

    def engines(self) -> set[str]:
        return set(self._timelines)

    def query_stats(self) -> dict[str, int]:
        """How window queries were served: scalar merges vs NumPy batches.

        The ``repro profile`` engine table derives its vectorized-batch hit
        rate from these (see docs/sim-internals.md).
        """
        scalar = sum(t.scalar_queries for t in self._timelines.values())
        vector = sum(t.vector_queries for t in self._timelines.values())
        return {"scalar_queries": scalar, "vector_queries": vector}

    def _busy_time_reference(
        self, engine: str, start: float, end: float
    ) -> float:
        """The pinned pure-Python scan the vectorized query must match."""
        clipped = sorted(
            (max(interval.start, start), min(interval.end, end))
            for interval in self.intervals
            if interval.engine == engine
            and interval.end > start
            and interval.start < end
        )
        busy = 0.0
        cursor = start
        for lo, hi in clipped:
            lo = max(lo, cursor)
            if hi > lo:
                busy += hi - lo
                cursor = hi
        return busy

    def busy_time(self, engine: str, start: float = 0.0, end: float | None = None) -> float:
        """Total time ``engine`` spent busy inside the [start, end) window.

        Intervals are clipped to the window; overlapping intervals on the
        same engine are merged so double-booked time is not counted twice.
        """
        if end is None:
            end = self.end_time()
        timeline = self._timelines.get(engine)
        if timeline is None:
            return 0.0
        return timeline.busy_time(start, end)

    def utilization(self, engine: str, start: float = 0.0, end: float | None = None) -> float:
        """Busy fraction of ``engine`` over the window; 0 for an empty window."""
        if end is None:
            end = self.end_time()
        span = end - start
        if span <= 0:
            return 0.0
        return self.busy_time(engine, start, end) / span

    def end_time(self) -> float:
        return self._max_end

    def by_label(self) -> dict[str, float]:
        """Aggregate busy duration per label (e.g. per operator name)."""
        totals: dict[str, float] = defaultdict(float)
        for interval in self.intervals:
            totals[interval.label] += interval.duration
        return dict(totals)
