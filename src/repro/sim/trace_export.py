"""Export simulation traces to the Chrome trace-event format.

Compatibility wrapper: the heavy lifting now lives in
:mod:`repro.obs.exporters`, which renders whole-stack traces (serving /
runtime / sim / fault / power). This module keeps the original
sim-only entry points — a bare :class:`~repro.sim.trace.Trace` in, one
engine row per thread out — by adapting the trace into a
:class:`~repro.obs.tracing.Tracer` and delegating.

Load the produced JSON in ``chrome://tracing`` / Perfetto to see the
simulated chip's timeline: one row per engine (cores, DMA engines, icache
stalls), one slice per kernel — the profiler view a vendor toolchain ships.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.exporters import to_chrome_trace as _unified_chrome_trace
from repro.obs.tracing import Tracer
from repro.sim.trace import Trace


def _category(engine: str) -> str:
    return engine.split(".", 1)[0]


def tracer_from_trace(trace: Trace, parent=None) -> Tracer:
    """Adapt a sim :class:`Trace` into a span tracer (one span per interval)."""
    tracer = Tracer()
    for interval in trace.intervals:
        tracer.add_span(
            interval.label,
            layer="sim",
            start_ns=interval.start,
            end_ns=interval.end,
            parent=parent,
            track=interval.engine,
            cat=_category(interval.engine),
        )
    return tracer


def to_chrome_trace(trace: Trace, process_name: str = "DTU 2.0") -> dict:
    """Build the chrome://tracing JSON document for one trace."""
    return _unified_chrome_trace(
        tracer_from_trace(trace), process_names={"sim": process_name}
    )


def save_chrome_trace(
    trace: Trace, path: str | Path, process_name: str = "DTU 2.0"
) -> Path:
    """Write the trace next to the workload; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(trace, process_name)))
    return path
