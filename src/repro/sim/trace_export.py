"""Export simulation traces to the Chrome trace-event format.

Load the produced JSON in ``chrome://tracing`` / Perfetto to see the
simulated chip's timeline: one row per engine (cores, DMA engines, icache
stalls), one slice per kernel — the profiler view a vendor toolchain ships.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sim.trace import Trace

#: microseconds per trace tick (Chrome wants us; our traces are ns)
_NS_PER_US = 1000.0


def _category(engine: str) -> str:
    return engine.split(".", 1)[0]


def to_chrome_trace(trace: Trace, process_name: str = "DTU 2.0") -> dict:
    """Build the chrome://tracing JSON document for one trace."""
    engines = sorted(trace.engines())
    thread_ids = {engine: index + 1 for index, engine in enumerate(engines)}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for engine, thread_id in thread_ids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": thread_id,
                "args": {"name": engine},
            }
        )
    for interval in trace.intervals:
        events.append(
            {
                "name": interval.label,
                "cat": _category(interval.engine),
                "ph": "X",  # complete event
                "pid": 1,
                "tid": thread_ids[interval.engine],
                "ts": interval.start / _NS_PER_US,
                "dur": interval.duration / _NS_PER_US,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def save_chrome_trace(
    trace: Trace, path: str | Path, process_name: str = "DTU 2.0"
) -> Path:
    """Write the trace next to the workload; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(trace, process_name)))
    return path
