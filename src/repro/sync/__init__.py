"""Synchronization engine: 1-1 / 1-N / N-1 / N-M patterns."""

from repro.sync.engine import SyncEngine, SyncStats
from repro.sync.events import Barrier, Semaphore

__all__ = ["Barrier", "Semaphore", "SyncEngine", "SyncStats"]
