"""Synchronization engine (paper §IV-D).

"each processing group integrates a dedicated synchronization engine. It
supports 1-to-1, 1-to-N, N-to-1, and N-to-M synchronization patterns, inside
or across processing groups."

Every operation costs the engine's base latency; operations that cross
processing groups pay a multiplier, reflecting the longer on-chip route.
The engine exposes the four patterns directly:

- ``signal``/``wait_for``: 1-to-1 producer/consumer handoff,
- ``notify_all``: 1-to-N release of N waiters,
- ``join``: N-to-1 aggregation (fires after N signals),
- ``rendezvous``: N-to-M barrier between producer and consumer sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.kernel import Event, Simulator, Timeout
from repro.sync.events import Barrier, Semaphore


@dataclass
class SyncStats:
    """Operation counts per pattern."""

    one_to_one: int = 0
    one_to_n: int = 0
    n_to_one: int = 0
    n_to_m: int = 0
    lost_events: int = 0
    """Sync events lost to an injected fault, recovered by timeout."""

    @property
    def total(self) -> int:
        return self.one_to_one + self.one_to_n + self.n_to_one + self.n_to_m


@dataclass
class SyncEngine:
    """One processing group's synchronization engine.

    With a :class:`~repro.faults.FaultInjector` attached (``faults``),
    each operation may lose its hardware event; the engine recovers by
    timeout — the operation succeeds after an extra ``sync_timeout_ns``
    from the fault plan. No injector means the timing path is untouched.
    """

    sim: Simulator
    group_id: int = 0
    latency_ns: float = 40.0
    cross_group_multiplier: float = 2.0
    stats: SyncStats = field(default_factory=SyncStats)
    faults: object | None = None
    _semaphores: dict[str, Semaphore] = field(default_factory=dict)
    _joins: dict[str, tuple[int, list[int], Event]] = field(default_factory=dict)

    def _delay(self, cross_group: bool) -> float:
        return self.latency_ns * (self.cross_group_multiplier if cross_group else 1.0)

    def _operate(self, label: str, cross_group: bool):
        """Process: one engine operation — base latency, plus the timeout
        recovery path when the injector loses this operation's event."""
        yield Timeout(self._delay(cross_group))
        if self.faults is not None and self.faults.sync_lost(
            f"sync.g{self.group_id}", label, self.sim.now
        ):
            self.stats.lost_events += 1
            yield Timeout(self.faults.plan.sync_timeout_ns)

    def semaphore(self, name: str) -> Semaphore:
        if name not in self._semaphores:
            self._semaphores[name] = Semaphore(self.sim, name=name)
        return self._semaphores[name]

    # -- 1-to-1 -----------------------------------------------------------

    def signal(self, name: str, cross_group: bool = False):
        """Process: producer side of a 1-to-1 handoff."""
        yield from self._operate(name, cross_group)
        self.semaphore(name).signal()
        self.stats.one_to_one += 1

    def wait_for(self, name: str):
        """Process: consumer side of a 1-to-1 handoff."""
        yield self.semaphore(name).wait()

    # -- 1-to-N -------------------------------------------------------------

    def notify_all(self, name: str, waiters: int, cross_group: bool = False):
        """Process: release ``waiters`` consumers with one operation."""
        if waiters < 1:
            raise ValueError(f"notify_all needs >= 1 waiter, got {waiters}")
        yield from self._operate(name, cross_group)
        self.semaphore(name).signal(waiters)
        self.stats.one_to_n += 1

    # -- N-to-1 -------------------------------------------------------------

    def join(self, name: str, parties: int) -> Event:
        """Event that fires once ``parties`` processes have checked in."""
        if name not in self._joins:
            event = self.sim.event(name=f"join.{name}")
            self._joins[name] = (parties, [0], event)
        stored_parties, _count, event = self._joins[name]
        if stored_parties != parties:
            raise ValueError(
                f"join {name!r} created for {stored_parties} parties, "
                f"got {parties}"
            )
        return event

    def check_in(self, name: str, parties: int, cross_group: bool = False):
        """Process: one party arriving at an N-to-1 join."""
        event = self.join(name, parties)
        yield from self._operate(name, cross_group)
        _parties, count, _event = self._joins[name]
        count[0] += 1
        if count[0] == parties:
            event.succeed()
            del self._joins[name]
            self.stats.n_to_one += 1

    # -- N-to-M ------------------------------------------------------------

    def rendezvous(self, parties: int, name: str = "rendezvous") -> Barrier:
        """Barrier releasing all M consumers once all N producers arrive.

        N-to-M in the paper's terms: create with ``parties = N + M`` and have
        both sides arrive; or use producer-side ``check_in`` + consumer-side
        ``join`` for asymmetric patterns.
        """
        self.stats.n_to_m += 1
        return Barrier(self.sim, parties=parties, name=f"{name}.g{self.group_id}")

    def arrive(self, barrier: Barrier, cross_group: bool = False):
        """Process: arrive at a rendezvous barrier and block for release."""
        yield from self._operate(barrier.name, cross_group)
        yield barrier.arrive()
