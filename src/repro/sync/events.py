"""Synchronization primitives layered on the simulation kernel.

These are the building blocks the :class:`~repro.sync.engine.SyncEngine`
composes into the paper's 1-to-1 / 1-to-N / N-to-1 / N-to-M patterns:
counting semaphores and arrival barriers, both usable from simulation
processes.
"""

from __future__ import annotations

from repro.sim.kernel import Event, SimulationError, Simulator


class Semaphore:
    """Counting semaphore: ``signal`` releases one ``wait`` in FIFO order."""

    def __init__(self, sim: Simulator, name: str = "sem", initial: int = 0) -> None:
        if initial < 0:
            raise ValueError(f"negative initial count {initial}")
        self.sim = sim
        self.name = name
        self.count = initial
        self._waiters: list[Event] = []
        self.signals = 0
        self.waits = 0

    def signal(self, amount: int = 1) -> None:
        if amount < 1:
            raise ValueError(f"signal amount must be >= 1, got {amount}")
        self.signals += amount
        for _ in range(amount):
            if self._waiters:
                self._waiters.pop(0).succeed()
            else:
                self.count += 1

    def wait(self) -> Event:
        """Returns an event to yield on; fires when a unit is available."""
        self.waits += 1
        event = self.sim.event(name=f"{self.name}.wait")
        if self.count > 0:
            self.count -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event


class Barrier:
    """N-party arrival barrier, reusable across generations."""

    def __init__(self, sim: Simulator, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise ValueError(f"barrier needs >= 1 party, got {parties}")
        self.sim = sim
        self.parties = parties
        self.name = name
        self.generation = 0
        self._arrived = 0
        self._gate = sim.event(name=f"{name}.gen0")

    def arrive(self) -> Event:
        """Register arrival; yield the returned event to block until release."""
        self._arrived += 1
        if self._arrived > self.parties:
            raise SimulationError(
                f"{self.name}: {self._arrived} arrivals exceed {self.parties} parties"
            )
        gate = self._gate
        if self._arrived == self.parties:
            self.generation += 1
            self._arrived = 0
            self._gate = self.sim.event(name=f"{self.name}.gen{self.generation}")
            gate.succeed()
        return gate
