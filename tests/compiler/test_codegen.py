"""Tests for elementwise kernel codegen: generated VLIW code must match the
numpy reference executor."""

import numpy as np
import pytest

from repro.compiler.codegen import (
    CodegenError,
    execute_kernel,
    generate_elementwise_kernel,
    supports,
)
from repro.core.datatypes import DType
from repro.graph.builder import GraphBuilder
from repro.graph.fusion import fuse_operators
from repro.graph.reference import ReferenceExecutor


def _chain_graph(extent=100):
    builder = GraphBuilder("chain")
    x = builder.input("x", (extent,))
    y = builder.input("y", (extent,))
    out = builder.add(x, y)
    out = builder.relu(out)
    out = builder.sigmoid(out)
    graph = builder.finish([out])
    return graph, out


class TestGeneration:
    def test_fused_chain_supported(self):
        graph, _ = _chain_graph()
        fuse_operators(graph)
        assert len(graph.nodes) == 1
        assert supports(graph.nodes[0])

    def test_matrix_op_not_supported(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (4, 4))
        y = builder.dense(x, 4)
        graph = builder.finish([y])
        assert not supports(graph.nodes[0])
        with pytest.raises(CodegenError):
            generate_elementwise_kernel(graph.nodes[0], graph)

    def test_strip_count_matches_extent(self):
        graph, _ = _chain_graph(extent=100)
        fuse_operators(graph)
        kernel = generate_elementwise_kernel(graph.nodes[0], graph, DType.FP32)
        # 100 elements / 16 lanes -> 7 strips, each with 1 store
        stores = sum(
            1
            for packet in kernel.program.packets
            for instruction in packet.instructions
            if instruction.opcode == "st"
        )
        assert stores == 7

    def test_packetizer_finds_cross_strip_ilp(self):
        graph, _ = _chain_graph(extent=160)
        fuse_operators(graph)
        kernel = generate_elementwise_kernel(graph.nodes[0], graph)
        assert kernel.schedule.ilp > 1.2

    def test_register_allocation_conflict_free(self):
        graph, _ = _chain_graph(extent=96)
        fuse_operators(graph)
        kernel = generate_elementwise_kernel(graph.nodes[0], graph)
        assert kernel.allocation.conflicts_after == 0

    def test_broadcast_inputs_rejected(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (16, 4))
        y = builder.input("y", (4,))
        out = builder.add(x, y)
        graph = builder.finish([out])
        with pytest.raises(CodegenError):
            generate_elementwise_kernel(graph.nodes[0], graph)


class TestExecutionMatchesReference:
    def _compare(self, graph, output, inputs, atol=1e-4):
        reference = ReferenceExecutor(graph).run(**inputs)[output]
        fuse_operators(graph)
        node = graph.nodes[0]
        kernel = generate_elementwise_kernel(node, graph)
        got = execute_kernel(kernel, inputs)
        assert got.shape == reference.ravel().shape
        assert np.allclose(got, reference.ravel(), atol=atol)

    def test_add_relu_sigmoid_chain(self):
        graph, output = _chain_graph(extent=100)
        rng = np.random.default_rng(0)
        self._compare(
            graph, output,
            {"x": rng.normal(size=100), "y": rng.normal(size=100)},
        )

    def test_single_unary(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (33,))
        out = builder.tanh(x)
        graph = builder.finish([out])
        rng = np.random.default_rng(1)
        self._compare(graph, output=out, inputs={"x": rng.normal(size=33)})

    def test_gelu_swish_chain(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (64,))
        out = builder.gelu(x)
        out = builder.swish(out)
        graph = builder.finish([out])
        rng = np.random.default_rng(2)
        self._compare(graph, output=out, inputs={"x": rng.normal(size=64)})

    def test_binary_tree_of_ops(self):
        builder = GraphBuilder("g")
        a = builder.input("a", (48,))
        b = builder.input("b", (48,))
        out = builder.mul(a, b)
        out = builder.maximum(out, a)
        out = builder.relu(out)
        graph = builder.finish([out])
        rng = np.random.default_rng(3)
        self._compare(
            graph, output=out,
            inputs={"a": rng.normal(size=48), "b": rng.normal(size=48)},
        )

    def test_ragged_tail_strip(self):
        """Extent not divisible by lanes: the tail strip must be exact."""
        builder = GraphBuilder("g")
        x = builder.input("x", (17,))
        out = builder.relu(x)
        graph = builder.finish([out])
        data = np.linspace(-1, 1, 17)
        self._compare(graph, output=out, inputs={"x": data}, atol=1e-9)

    def test_2d_tensor_flattens(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (4, 25))
        out = builder.sigmoid(x)
        graph = builder.finish([out])
        rng = np.random.default_rng(4)
        self._compare(graph, output=out, inputs={"x": rng.normal(size=(4, 25))})

    def test_missing_input_rejected(self):
        graph, _ = _chain_graph(extent=16)
        fuse_operators(graph)
        kernel = generate_elementwise_kernel(graph.nodes[0], graph)
        with pytest.raises(CodegenError):
            execute_kernel(kernel, {"x": np.zeros(16)})

    def test_wrong_extent_rejected(self):
        graph, _ = _chain_graph(extent=16)
        fuse_operators(graph)
        kernel = generate_elementwise_kernel(graph.nodes[0], graph)
        with pytest.raises(CodegenError):
            execute_kernel(kernel, {"x": np.zeros(8), "y": np.zeros(8)})

    def test_fp16_lanes_widen_strips(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (64,))
        out = builder.relu(x)
        graph = builder.finish([out])
        fp32 = generate_elementwise_kernel(graph.nodes[0], graph, DType.FP32)
        fp16 = generate_elementwise_kernel(graph.nodes[0], graph, DType.FP16)
        assert fp16.program.instruction_count < fp32.program.instruction_count
        data = np.random.default_rng(5).normal(size=64)
        assert np.allclose(
            execute_kernel(fp16, {"x": data}, DType.FP16),
            np.maximum(data, 0.0),
        )
