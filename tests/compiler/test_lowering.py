"""Unit tests for graph -> kernel lowering."""

import pytest

from repro.compiler.lowering import lower_graph
from repro.core.config import dtu1_config, dtu2_config
from repro.core.datatypes import DType
from repro.graph.builder import GraphBuilder
from repro.graph.passes import optimize


def _small_graph(fused=True):
    builder = GraphBuilder("small")
    x = builder.input("x", (1, 3, 32, 32))
    y = builder.conv2d(x, 16, 3, pad=1)
    y = builder.batch_norm(y)
    y = builder.relu(y)
    y = builder.dense(builder.flatten(builder.global_avg_pool(y)), 10)
    graph = builder.finish([y])
    if fused:
        graph, _ = optimize(graph)
    return graph


class TestLowering:
    def test_one_kernel_per_node(self):
        graph = _small_graph()
        compiled = lower_graph(graph, dtu2_config())
        assert len(compiled.kernels) == len(graph.nodes)

    def test_fused_kernel_aggregates_members(self):
        compiled = lower_graph(_small_graph(), dtu2_config())
        fused = [kernel for kernel in compiled.kernels if kernel.is_fused]
        assert fused and fused[0].members == 3
        assert fused[0].category == "conv"

    def test_internal_bytes_only_on_fused_kernels(self):
        compiled = lower_graph(_small_graph(), dtu2_config())
        for kernel in compiled.kernels:
            if not kernel.is_fused:
                assert kernel.cost.internal_bytes == 0

    def test_fusion_moves_traffic_to_internal(self):
        fused = lower_graph(_small_graph(fused=True), dtu2_config())
        plain = lower_graph(_small_graph(fused=False), dtu2_config())
        assert fused.total_flops == pytest.approx(plain.total_flops)
        assert fused.total_boundary_bytes < plain.total_boundary_bytes
        assert fused.total_internal_bytes > 0

    def test_byte_counts_scale_with_dtype(self):
        fp32 = lower_graph(_small_graph(), dtu2_config(), DType.FP32)
        fp16 = lower_graph(_small_graph(), dtu2_config(), DType.FP16)
        assert fp32.total_boundary_bytes == 2 * fp16.total_boundary_bytes

    def test_weights_counted_separately(self):
        compiled = lower_graph(_small_graph(fused=False), dtu2_config())
        conv = next(k for k in compiled.kernels if k.attrs["op_type"] == "conv2d")
        # conv weight: 16 x 3 x 3 x 3 + bias 16 at FP16
        assert conv.cost.weight_bytes == (16 * 3 * 3 * 3 + 16) * 2

    def test_conv_gets_tensorization_plan(self):
        compiled = lower_graph(_small_graph(), dtu2_config())
        conv = next(k for k in compiled.kernels if k.category == "conv")
        assert conv.tensorization is not None
        assert 0 < conv.tensorization.utilization <= 1.0

    def test_dtu1_coarse_tensorization_no_better(self):
        fine = lower_graph(_small_graph(), dtu2_config())
        coarse = lower_graph(_small_graph(), dtu1_config())
        fine_util = [k.tensorization.utilization for k in fine.kernels if k.tensorization]
        coarse_util = [k.tensorization.utilization for k in coarse.kernels if k.tensorization]
        assert sum(fine_util) >= sum(coarse_util)

    def test_every_kernel_has_tiling_when_data_moves(self):
        compiled = lower_graph(_small_graph(), dtu2_config())
        for kernel in compiled.kernels:
            if kernel.cost.boundary_bytes > 0 and kernel.cost.flops > 0:
                assert kernel.tiling is not None

    def test_repeat_dma_single_configuration(self):
        compiled = lower_graph(_small_graph(), dtu2_config())
        for kernel in compiled.kernels:
            if kernel.tiling is not None:
                assert kernel.tiling.dma_configurations == 1

    def test_code_bytes_positive_and_fused_bigger(self):
        compiled = lower_graph(_small_graph(), dtu2_config())
        fused = next(k for k in compiled.kernels if k.is_fused)
        plain = next(k for k in compiled.kernels if not k.is_fused)
        assert fused.code_bytes > plain.code_bytes > 0

    def test_sparsity_attr_propagates(self):
        graph = _small_graph(fused=True)
        compiled = lower_graph(graph, dtu2_config())
        # relu carries RELU_SPARSITY via models.layers only; here built
        # manually so sparsity defaults to 0
        assert all(kernel.sparsity == 0.0 for kernel in compiled.kernels)

    def test_arithmetic_intensity_sane(self):
        compiled = lower_graph(_small_graph(), dtu2_config())
        conv = next(k for k in compiled.kernels if k.category == "conv")
        assert conv.cost.arithmetic_intensity > 1.0

    def test_symbolic_graph_rejected(self):
        builder = GraphBuilder("dyn")
        x = builder.input("x", ("batch", 4))
        y = builder.dense(x, 8)
        graph = builder.finish([y])
        from repro.graph.ir import GraphError

        with pytest.raises(GraphError):
            lower_graph(graph, dtu2_config())
