"""Unit tests for the VLIW packetizer + alias analysis (§V-B)."""


from repro.compiler.packetizer import dependence_graph, packetize
from repro.engines.vliw import Instruction


def _linear_chain():
    return [
        Instruction("ld", "t0", imm=("x",)),
        Instruction("vadd", "t1", ("t0", "t0")),
        Instruction("vmul", "t2", ("t1", "t1")),
        Instruction("st", None, ("t2",), imm=("y",)),
    ]


def _independent_pairs():
    return [
        Instruction("ld", "t0", imm=("x",)),
        Instruction("smov", "s0", imm=(1.0,)),
        Instruction("vadd", "t1", ("t0", "t0")),
        Instruction("sadd", "s1", ("s0", "s0")),
    ]


class TestDependenceGraph:
    def test_raw_edges(self):
        graph = dependence_graph(_linear_chain())
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 3)

    def test_war_edge(self):
        instructions = [
            Instruction("vadd", "t1", ("t0", "t0")),
            Instruction("ld", "t0", imm=("x",)),  # writes t0 after the read
        ]
        graph = dependence_graph(instructions)
        assert graph.has_edge(0, 1)

    def test_waw_edge(self):
        instructions = [
            Instruction("ld", "t0", imm=("x",)),
            Instruction("ld", "t0", imm=("y",)),
        ]
        graph = dependence_graph(instructions)
        assert graph.has_edge(0, 1)

    def test_loads_never_conflict(self):
        instructions = [
            Instruction("ld", "t0", imm=("x",)),
            Instruction("ld", "t1", imm=("x",)),
        ]
        graph = dependence_graph(instructions)
        assert not graph.has_edge(0, 1)

    def test_alias_analysis_distinguishes_tensors(self):
        instructions = [
            Instruction("st", None, ("t0",), imm=("x",)),
            Instruction("ld", "t1", imm=("y",)),
        ]
        precise = dependence_graph(instructions, alias_analysis=True)
        assert not precise.has_edge(0, 1)
        ambiguous = dependence_graph(instructions, alias_analysis=False)
        assert ambiguous.has_edge(0, 1)

    def test_same_tensor_store_load_ordered(self):
        instructions = [
            Instruction("st", None, ("t0",), imm=("x",)),
            Instruction("ld", "t1", imm=("x",)),
        ]
        graph = dependence_graph(instructions, alias_analysis=True)
        assert graph.has_edge(0, 1)


class TestPacketize:
    def test_independent_work_packs_together(self):
        program, report = packetize(_independent_pairs())
        assert report.packets < report.instructions
        assert report.ilp > 1.0

    def test_serial_chain_cannot_pack(self):
        program, report = packetize(_linear_chain())
        assert report.packets == 4
        assert report.ilp == 1.0

    def test_slot_limits_respected(self):
        # three vector adds are independent but share the vector slot
        instructions = [
            Instruction("vadd", f"t{i}", (f"a{i}", f"b{i}")) for i in range(3)
        ]
        # register reads exist but were never written -> no RAW edges
        program, report = packetize(instructions)
        assert report.packets == 3

    def test_all_instructions_scheduled_exactly_once(self):
        instructions = _independent_pairs() + _linear_chain()
        program, report = packetize(instructions)
        scheduled = [
            instruction
            for packet in program.packets
            for instruction in packet.instructions
        ]
        assert len(scheduled) == len(instructions)

    def test_program_order_preserved_along_dependencies(self):
        program, _ = packetize(_linear_chain())
        position = {}
        for index, packet in enumerate(program.packets):
            for instruction in packet.instructions:
                position[instruction.opcode] = index
        assert position["ld"] < position["vadd"] < position["vmul"] < position["st"]

    def test_alias_analysis_improves_ilp(self):
        """The §V-B claim: fewer ambiguous dependencies, better packing."""
        instructions = []
        for index in range(6):
            instructions.append(
                Instruction("st", None, (f"t{index}",), imm=(f"buffer{index}",))
            )
        precise_program, precise = packetize(instructions, alias_analysis=True)
        fuzzy_program, fuzzy = packetize(instructions, alias_analysis=False)
        # stores share one slot either way, but alias analysis removes the
        # spurious memory edges
        assert precise.memory_edges < fuzzy.memory_edges

    def test_alias_analysis_reduces_mixed_stream_packets(self):
        instructions = []
        for index in range(4):
            instructions.append(Instruction("ld", f"t{index}", imm=(f"in{index}",)))
            instructions.append(
                Instruction("st", None, (f"t{index}",), imm=(f"out{index}",))
            )
        _, precise = packetize(instructions, alias_analysis=True)
        _, fuzzy = packetize(instructions, alias_analysis=False)
        assert precise.packets <= fuzzy.packets
        assert precise.memory_edges < fuzzy.memory_edges

    def test_packets_are_legal(self):
        program, _ = packetize(_independent_pairs() + _linear_chain())
        for packet in program.packets:
            slots = [instruction.slot for instruction in packet.instructions]
            assert len(slots) == len(set(slots))

    def test_code_size_shrinks_with_packing(self):
        """§V-B: 'kernel code size is optimized' by packing."""
        instructions = _independent_pairs()
        packed, _ = packetize(instructions)
        unpacked_headers = len(instructions) * 4
        assert packed.code_bytes < len(instructions) * 16 + unpacked_headers + 1
