"""Unit tests for the bank-conflict-avoiding register allocator (§V-B)."""

import pytest

from repro.compiler.regalloc import (
    AllocationError,
    allocate_registers,
    total_conflicts,
)
from repro.engines.vliw import Instruction, Packet, Program, register_bank


def _program(packets):
    return Program(packets=[Packet(tuple(instructions)) for instructions in packets])


def test_conflicting_operands_get_distinct_banks():
    # t0 and t4 would share bank 0 if mapped naively
    program = _program([[Instruction("vadd", "t8", ("t0", "t4"))]])
    assert total_conflicts(program) == 1
    result = allocate_registers(program)
    assert result.conflicts_after == 0
    assert result.conflicts_removed == 1
    mapped = result.mapping
    assert register_bank(mapped["t0"]) != register_bank(mapped["t4"])


def test_four_way_read_fully_resolved():
    program = _program(
        [
            [
                Instruction("vfma", "t10", ("t0", "t4", "t8")),
                Instruction("sadd", "t11", ("t12", "t16")),
            ]
        ]
    )
    result = allocate_registers(program)
    # 5 reads over 4 banks: at most one residual conflict, and the greedy
    # coloring should find the 0-conflict layout here
    assert result.conflicts_after <= total_conflicts(program)
    assert result.conflicts_after == 0 or result.conflicts_after < result.conflicts_before


def test_cross_packet_reuse_is_consistent():
    program = _program(
        [
            [Instruction("vadd", "t2", ("t0", "t1"))],
            [Instruction("vmul", "t3", ("t2", "t0"))],
        ]
    )
    result = allocate_registers(program)
    # every occurrence of t0 renames to the same physical register
    first = result.program.packets[0].instructions[0]
    second = result.program.packets[1].instructions[0]
    assert first.srcs[0] == second.srcs[1]


def test_semantics_preserved_for_overlapping_lifetimes():
    """Simultaneously-live registers must not merge; dead ones may reuse."""
    program = _program(
        [
            [Instruction("ld", "t0", imm=("x",))],
            [Instruction("ld", "t1", imm=("y",))],
            [Instruction("vadd", "t2", ("t0", "t1"))],  # t0,t1,t2 co-live
            [Instruction("st", None, ("t2",), imm=("z",))],
        ]
    )
    result = allocate_registers(program)
    live_together = {result.mapping[r] for r in ("t0", "t1", "t2")}
    assert len(live_together) == 3


def test_dead_registers_are_reused():
    """Liveness-based coloring: strips reuse the register file."""
    packets = []
    for strip in range(20):
        packets.append([Instruction("ld", f"t{strip}", imm=(f"x{strip}",))])
        packets.append(
            [Instruction("st", None, (f"t{strip}",), imm=(f"y{strip}",))]
        )
    result = allocate_registers(_program(packets))
    assert len(set(result.mapping.values())) < 20  # physical reuse happened


def test_conflict_free_program_stays_conflict_free():
    program = _program([[Instruction("vadd", "t2", ("t0", "t1"))]])
    assert total_conflicts(program) == 0
    assert allocate_registers(program).conflicts_after == 0


def test_too_many_live_registers_raises():
    # Define 40 registers, then consume them all much later: 40 overlapping
    # live ranges cannot fit 32 physical registers.
    packets = []
    for index in range(40):
        packets.append([Instruction("ld", f"t{index}", imm=(f"x{index}",))])
    for index in range(40):
        packets.append(
            [Instruction("st", None, (f"t{index}",), imm=(f"y{index}",))]
        )
    with pytest.raises(AllocationError):
        allocate_registers(_program(packets))


def test_immediates_untouched():
    program = _program([[Instruction("ld", "t0", imm=("tensor", 0, 4))]])
    result = allocate_registers(program)
    assert result.program.packets[0].instructions[0].imm == ("tensor", 0, 4)
