"""Unit tests for auto-tensorization (VMM mapping, §V-B / §III)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.tensorize import (
    GemmShape,
    TensorizeError,
    conv2d_as_gemm,
    gpu_tile_utilization,
    matrix_engine_efficiency,
    tensorize_gemm,
)
from repro.core.datatypes import DType


class TestGemmShape:
    def test_useful_macs(self):
        assert GemmShape(2, 3, 4).useful_macs == 24

    def test_degenerate_rejected(self):
        with pytest.raises(TensorizeError):
            GemmShape(0, 1, 1)

    def test_tall_skinny_detection(self):
        assert GemmShape(m=1000, n=8, k=64).is_tall_skinny
        assert not GemmShape(m=64, n=64, k=64).is_tall_skinny

    def test_conv_as_gemm(self):
        shape = conv2d_as_gemm(
            batch=2, out_channels=64, out_height=14, out_width=14,
            in_channels_per_group=32, kernel_h=3, kernel_w=3,
        )
        assert shape.m == 2 * 14 * 14
        assert shape.n == 64
        assert shape.k == 32 * 9


class TestFineGrainedVmm:
    def test_aligned_shape_full_utilization(self):
        plan = tensorize_gemm(GemmShape(m=64, n=32, k=32), DType.FP16)
        assert plan.utilization == pytest.approx(1.0)

    def test_issued_macs_cover_useful(self):
        plan = tensorize_gemm(GemmShape(m=10, n=50, k=70), DType.FP16)
        assert plan.issued_macs >= plan.shape.useful_macs
        assert 0 < plan.utilization <= 1.0

    def test_vmm_count_formula(self):
        plan = tensorize_gemm(GemmShape(m=64, n=32, k=32), DType.FP16)
        assert plan.vmm_count * plan.pattern_rows * plan.pattern_cols == plan.issued_macs

    def test_loop_switching_rescues_narrow_output(self):
        """§V-B loop switching: a 3-channel conv output must not tank."""
        narrow = GemmShape(m=100000, n=3, k=512)
        fine = tensorize_gemm(narrow, DType.FP16, fine_grained=True)
        assert fine.utilization > 0.9

    def test_fp32_uses_16_lane_patterns(self):
        plan = tensorize_gemm(GemmShape(m=100, n=16, k=16), DType.FP32)
        assert plan.pattern_cols == 16
        assert plan.utilization == pytest.approx(1.0)


class TestCoarseVsFine:
    """§III: coarse GEMM engines waste on tall-and-skinny matrices."""

    def test_coarse_locked_to_largest_tile(self):
        coarse = tensorize_gemm(GemmShape(m=64, n=8, k=8), DType.FP16,
                                fine_grained=False)
        assert coarse.pattern_rows == 32 and coarse.pattern_cols == 32

    def test_fine_beats_coarse_on_depthwise_conv(self):
        # depthwise 3x3: K = 9 per channel, tall-skinny
        depthwise = conv2d_as_gemm(1, 1, 56, 56, 1, 3, 3)
        fine = matrix_engine_efficiency(depthwise, fine_grained=True)
        coarse = matrix_engine_efficiency(depthwise, fine_grained=False)
        assert fine > coarse

    def test_fine_never_worse(self):
        for shape in (
            GemmShape(64, 64, 64),
            GemmShape(1, 1000, 3),
            GemmShape(7, 13, 29),
        ):
            assert matrix_engine_efficiency(shape, fine_grained=True) >= (
                matrix_engine_efficiency(shape, fine_grained=False)
            )

    def test_square_shapes_equal(self):
        big = GemmShape(m=128, n=32, k=32)
        fine = matrix_engine_efficiency(big, fine_grained=True)
        coarse = matrix_engine_efficiency(big, fine_grained=False)
        assert fine == pytest.approx(coarse)


class TestGpuTiles:
    def test_aligned_gemm_full_utilization(self):
        assert gpu_tile_utilization(GemmShape(128, 128, 64)) == pytest.approx(1.0)

    def test_small_gemm_wastes(self):
        assert gpu_tile_utilization(GemmShape(17, 9, 40)) < 0.25

    def test_orientation_flip_considered(self):
        tall = gpu_tile_utilization(GemmShape(m=3, n=4096, k=512))
        assert tall == gpu_tile_utilization(GemmShape(m=4096, n=3, k=512))

    def test_bounded_by_one(self):
        assert gpu_tile_utilization(GemmShape(1000000, 1000000, 1000)) <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    m=st.integers(1, 5000),
    n=st.integers(1, 512),
    k=st.integers(1, 512),
    dtype=st.sampled_from([DType.FP16, DType.FP32, DType.INT8]),
)
def test_property_utilization_in_unit_interval(m, n, k, dtype):
    plan = tensorize_gemm(GemmShape(m, n, k), dtype)
    assert 0.0 < plan.utilization <= 1.0
    assert plan.issued_macs >= plan.shape.useful_macs
