"""Unit tests for the data-flow auto-tuner (tiling search, §V-B)."""

import pytest

from repro.compiler.kernel import KernelCost
from repro.compiler.tiling import TilingError, TilingSearchSpace, tune_tiling

MB = 1 << 20


def _cost(flops=1e9, boundary=8 * MB):
    return KernelCost(
        flops=flops, input_bytes=boundary // 2, output_bytes=boundary // 4,
        weight_bytes=boundary // 4,
    )


def _tune(cost=None, l1=1 * MB, compute=85.0, bandwidth=136.0, repeat=True, **kw):
    return tune_tiling(
        cost or _cost(),
        l1_capacity_bytes=l1,
        compute_flops_per_ns=compute,
        dma_bandwidth_gbps=bandwidth,
        dma_config_overhead_ns=220.0,
        repeat_mode=repeat,
        **kw,
    )


def test_tiles_fit_l1_with_buffering():
    plan = _tune()
    assert plan.tile_bytes * plan.buffers <= 1 * MB


def test_pipelining_beats_serial():
    plan = _tune()
    assert plan.overlap_efficiency > 1.0


def test_repeat_mode_single_configuration():
    assert _tune(repeat=True).dma_configurations == 1


def test_no_repeat_mode_one_config_per_tile():
    plan = _tune(repeat=False)
    assert plan.dma_configurations == plan.tiles


def test_repeat_mode_never_slower():
    with_repeat = _tune(repeat=True)
    without = _tune(repeat=False)
    assert with_repeat.pipelined_time_ns <= without.pipelined_time_ns


def test_compute_bound_kernel_hides_dma():
    plan = _tune(_cost(flops=1e11, boundary=1 * MB))
    assert plan.compute_time_ns > plan.dma_time_ns
    # pipelined time approaches pure compute time
    assert plan.pipelined_time_ns < plan.compute_time_ns * 1.3


def test_bandwidth_bound_kernel_hides_compute():
    plan = _tune(_cost(flops=1e6, boundary=32 * MB))
    assert plan.dma_time_ns > plan.compute_time_ns
    assert plan.pipelined_time_ns < plan.dma_time_ns * 1.3


def test_giant_working_set_falls_back():
    plan = _tune(_cost(boundary=1024 * MB), l1=256 * 1024)
    assert plan.tiles == TilingSearchSpace().max_tiles


def test_zero_data_rejected():
    with pytest.raises(TilingError):
        _tune(KernelCost(flops=1e9, input_bytes=0, output_bytes=0, weight_bytes=0))


def test_bad_throughput_rejected():
    with pytest.raises(TilingError):
        _tune(compute=0.0)


def test_search_is_deterministic():
    assert _tune() == _tune()


def test_bigger_l1_never_hurts():
    small = _tune(l1=256 * 1024)
    large = _tune(l1=4 * MB)
    assert large.pipelined_time_ns <= small.pipelined_time_ns
