"""Unit tests for auto-vectorization (loop + super-word levels, §V-B)."""

import pytest

from repro.compiler.vectorize import (
    ScalarLoop,
    ScalarOp,
    pack_superwords,
    vectorize_loop,
)
from repro.core.datatypes import DType

BODY = (
    ScalarOp("mul", "t0", ("a", "b")),
    ScalarOp("add", "t1", ("t0", "c")),
)


class TestLoopVectorization:
    def test_exact_multiple_has_no_tail(self):
        result = vectorize_loop(ScalarLoop(extent=64, body=BODY), DType.FP32)
        assert result.vector_iterations == 4
        assert result.tail_iterations == 0
        assert result.scalar_ops == 0

    def test_remainder_becomes_scalar_tail(self):
        result = vectorize_loop(ScalarLoop(extent=67, body=BODY), DType.FP32)
        assert result.vector_iterations == 4
        assert result.tail_iterations == 3
        assert result.scalar_ops == 3 * len(BODY)

    def test_speedup_approaches_lane_count(self):
        result = vectorize_loop(ScalarLoop(extent=16 * 100, body=BODY), DType.FP32)
        assert result.speedup == pytest.approx(16.0)

    def test_short_loop_no_speedup(self):
        result = vectorize_loop(ScalarLoop(extent=3, body=BODY), DType.FP32)
        assert result.speedup == pytest.approx(1.0)

    def test_wider_lanes_for_fp16(self):
        fp32 = vectorize_loop(ScalarLoop(extent=320, body=BODY), DType.FP32)
        fp16 = vectorize_loop(ScalarLoop(extent=320, body=BODY), DType.FP16)
        assert fp16.speedup > fp32.speedup

    def test_transcendentals_route_to_sfu(self):
        body = (
            ScalarOp("mul", "t0", ("a", "b")),
            ScalarOp("tanh", "t1", ("t0",)),
            ScalarOp("gelu", "t2", ("t1",)),
        )
        result = vectorize_loop(ScalarLoop(extent=32, body=body), DType.FP32)
        assert result.sfu_ops == 2 * result.vector_iterations
        assert result.vector_ops == 1 * result.vector_iterations

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            ScalarLoop(extent=4, body=())

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            ScalarLoop(extent=-1, body=BODY)

    def test_zero_extent_loop(self):
        result = vectorize_loop(ScalarLoop(extent=0, body=BODY), DType.FP32)
        assert result.total_issued_ops == 0


class TestSuperwordPacking:
    def test_isomorphic_statements_pack(self):
        block = [ScalarOp("add", f"t{i}", (f"a{i}", f"b{i}")) for i in range(16)]
        groups, leftovers = pack_superwords(block, DType.FP32)
        assert len(groups) == 1 and groups[0].width == 16
        assert not leftovers

    def test_mixed_opcodes_pack_separately(self):
        block = [ScalarOp("add", f"t{i}", ()) for i in range(4)] + [
            ScalarOp("mul", f"u{i}", ()) for i in range(4)
        ]
        groups, _ = pack_superwords(block, DType.FP32)
        assert {group.op for group in groups} == {"add", "mul"}

    def test_dependence_breaks_group(self):
        block = [
            ScalarOp("add", "t0", ("a", "b")),
            ScalarOp("add", "t1", ("t0", "c")),  # reads t0: dependent
        ]
        groups, leftovers = pack_superwords(block, DType.FP32)
        assert not groups  # neither bucket reaches width 2 independently
        assert len(leftovers) == 2

    def test_singleton_left_scalar(self):
        groups, leftovers = pack_superwords([ScalarOp("add", "t0", ())], DType.FP32)
        assert not groups and len(leftovers) == 1

    def test_lane_limit_splits_groups(self):
        block = [ScalarOp("add", f"t{i}", ()) for i in range(40)]
        groups, _ = pack_superwords(block, DType.FP32)
        assert all(group.width <= 16 for group in groups)
        assert sum(group.width for group in groups) == 40
