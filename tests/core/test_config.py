"""Unit tests for chip configurations against the paper's numbers."""

import pytest

from repro.core.config import FeatureFlags, KB, MB, GB, dtu1_config, dtu2_config
from repro.core.datatypes import DType


class TestDtu2:
    def setup_method(self):
        self.chip = dtu2_config()

    def test_table1_peak_rates(self):
        assert self.chip.peak_flops(DType.FP32) == 32e12
        assert self.chip.peak_flops(DType.TF32) == 128e12
        assert self.chip.peak_flops(DType.FP16) == 128e12
        assert self.chip.peak_flops(DType.BF16) == 128e12
        assert self.chip.peak_flops(DType.INT8) == 256e12

    def test_fig2_topology(self):
        """2 clusters x 12 cores, 3 processing groups of 4 cores each."""
        assert self.chip.clusters == 2
        assert self.chip.cores_per_cluster == 12
        assert self.chip.total_cores == 24
        assert self.chip.groups_per_cluster == 3
        assert self.chip.total_groups == 6
        assert self.chip.cores_per_group == 4

    def test_table1_board(self):
        assert self.chip.tdp_watts == 150.0
        assert self.chip.pcie_gbps == 64.0
        assert self.chip.l3.capacity_bytes == 16 * GB
        assert self.chip.l3.bandwidth_gbps == 819.0

    def test_l2_has_four_ports(self):
        assert self.chip.l2_per_group.ports == 4

    def test_dvfs_range(self):
        assert self.chip.base_clock_ghz == 1.0
        assert self.chip.max_clock_ghz == 1.4

    def test_all_features_on_by_default(self):
        flags = self.chip.features
        assert flags.operator_fusion
        assert flags.repeat_dma
        assert flags.icache_prefetch
        assert flags.sparse_dma
        assert flags.l2_broadcast
        assert flags.affinity_allocation
        assert flags.fine_grained_vmm
        assert flags.direct_l1_l3_dma
        assert flags.power_management


class TestDtu1:
    def setup_method(self):
        self.chip = dtu1_config()

    def test_section2_peaks(self):
        """§II-A: 20/80/80 teraFLOPS FP32/FP16/BF16; 80 TOPS INT8."""
        assert self.chip.peak_flops(DType.FP32) == 20e12
        assert self.chip.peak_flops(DType.FP16) == 80e12
        assert self.chip.peak_flops(DType.INT8) == 80e12

    def test_section2_topology(self):
        assert self.chip.clusters == 4
        assert self.chip.total_cores == 32
        assert self.chip.total_groups == 4

    def test_section2_memories(self):
        assert self.chip.l1_per_core.capacity_bytes == 256 * KB
        assert self.chip.l2_per_group.capacity_bytes == 4 * MB
        assert self.chip.l3.bandwidth_gbps == 512.0
        assert self.chip.l2_per_group.ports == 1

    def test_dtu2_features_absent(self):
        flags = self.chip.features
        assert not flags.repeat_dma
        assert not flags.icache_prefetch
        assert not flags.sparse_dma
        assert not flags.l2_broadcast
        assert not flags.fine_grained_vmm
        assert not flags.direct_l1_l3_dma


class TestGenerationRatios:
    """Table II 'Enhancements over DTU 1.0' column, checked as ratios."""

    def setup_method(self):
        self.v1 = dtu1_config()
        self.v2 = dtu2_config()

    def test_l1_per_core_4x(self):
        assert (
            self.v2.l1_per_core.capacity_bytes
            == 4 * self.v1.l1_per_core.capacity_bytes
        )

    def test_l2_per_cluster_6x(self):
        l2_v1 = self.v1.l2_per_group.capacity_bytes * self.v1.groups_per_cluster
        l2_v2 = self.v2.l2_per_group.capacity_bytes * self.v2.groups_per_cluster
        assert l2_v2 == 6 * l2_v1

    def test_total_l1_l2_3x(self):
        total_v1 = (
            self.v1.l1_per_core.capacity_bytes * self.v1.total_cores
            + self.v1.l2_per_group.capacity_bytes * self.v1.total_groups
        )
        total_v2 = (
            self.v2.l1_per_core.capacity_bytes * self.v2.total_cores
            + self.v2.l2_per_group.capacity_bytes * self.v2.total_groups
        )
        assert total_v2 == 3 * total_v1

    def test_l3_bandwidth_1_6x(self):
        assert self.v2.l3.bandwidth_gbps == pytest.approx(
            1.6 * self.v1.l3.bandwidth_gbps, rel=0.01
        )

    def test_l3_capacity_unchanged(self):
        assert self.v2.l3.capacity_bytes == self.v1.l3.capacity_bytes

    def test_peak_fp16_1_6x_int8_3_2x(self):
        assert self.v2.peak_flops(DType.FP16) == pytest.approx(
            1.6 * self.v1.peak_flops(DType.FP16)
        )
        assert self.v2.peak_flops(DType.INT8) == pytest.approx(
            3.2 * self.v1.peak_flops(DType.INT8)
        )

    def test_fewer_but_stronger_cores(self):
        """§III capability vs quantity: 24 cores beat 32 cores."""
        assert self.v2.total_cores < self.v1.total_cores
        per_core_v2 = self.v2.peak_flops(DType.FP16) / self.v2.total_cores
        per_core_v1 = self.v1.peak_flops(DType.FP16) / self.v1.total_cores
        assert per_core_v2 > per_core_v1


def test_feature_flags_disable_returns_copy():
    flags = FeatureFlags()
    modified = flags.disable(repeat_dma=False)
    assert flags.repeat_dma
    assert not modified.repeat_dma


def test_core_flops_per_ns_scales_with_clock():
    chip = dtu2_config()
    full = chip.core_flops_per_ns(DType.FP16)
    half = chip.core_flops_per_ns(DType.FP16, clock_ghz=0.7)
    assert half == pytest.approx(full / 2)


def test_with_features_replaces_flags():
    chip = dtu2_config()
    stripped = chip.with_features(FeatureFlags(sparse_dma=False))
    assert not stripped.features.sparse_dma
    assert chip.features.sparse_dma
