"""Unit tests for architectural data types."""

import numpy as np
import pytest

from repro.core.datatypes import DType, DTypeKind, tensor_bytes


def test_all_widths_covered():
    assert {dtype.bits for dtype in DType} == {8, 16, 32}


def test_bytes_matches_bits():
    for dtype in DType:
        assert dtype.bytes == dtype.bits // 8


def test_table1_rate_multipliers():
    """Table I ratios: FP16/BF16/TF32 4x FP32; INT8 8x FP32-rate."""
    assert DType.FP16.rate_multiplier == 4.0
    assert DType.BF16.rate_multiplier == 4.0
    assert DType.TF32.rate_multiplier == 4.0
    assert DType.INT8.rate_multiplier == 8.0
    assert DType.FP32.rate_multiplier == 1.0


def test_kind_classification():
    assert DType.FP16.kind is DTypeKind.FLOAT
    assert DType.INT8.kind is DTypeKind.INT
    assert DType.FP32.is_float
    assert not DType.INT32.is_float


def test_numpy_dtype_carriers():
    assert DType.FP16.numpy_dtype == np.dtype(np.float32)
    assert DType.INT8.numpy_dtype == np.dtype(np.int8)
    assert DType.INT16.numpy_dtype == np.dtype(np.int16)


def test_parse_accepts_names_case_insensitively():
    assert DType.parse("fp16") is DType.FP16
    assert DType.parse("INT8") is DType.INT8
    assert DType.parse(DType.BF16) is DType.BF16


def test_parse_rejects_unknown():
    with pytest.raises(ValueError):
        DType.parse("fp64")


def test_tensor_bytes():
    assert tensor_bytes((2, 3, 4), DType.FP32) == 96
    assert tensor_bytes((2, 3, 4), DType.FP16) == 48
    assert tensor_bytes((), DType.INT8) == 1


def test_tensor_bytes_rejects_negative_dim():
    with pytest.raises(ValueError):
        tensor_bytes((2, -1), DType.FP32)
