"""Unit + property tests for resource abstraction (§IV-E, Fig. 7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import dtu2_config
from repro.core.resource import (
    GroupId,
    ResourceError,
    ResourceManager,
    recommend_groups,
)

MB = 1 << 20


@pytest.fixture
def manager():
    return ResourceManager(dtu2_config())


class TestTopology:
    def test_six_groups_total(self, manager):
        assert len(manager.all_groups()) == 6

    def test_groups_span_two_clusters(self, manager):
        clusters = {group.cluster for group in manager.all_groups()}
        assert clusters == {0, 1}


class TestFig7Policy:
    def test_small_workload_one_group(self):
        chip = dtu2_config()
        assert recommend_groups(4 * MB, chip) == 1

    def test_medium_workload_two_groups(self):
        chip = dtu2_config()
        assert recommend_groups(12 * MB, chip) == 2

    def test_large_workload_full_cluster(self):
        chip = dtu2_config()
        assert recommend_groups(100 * MB, chip) == 3

    def test_latency_critical_gets_cluster(self):
        chip = dtu2_config()
        assert recommend_groups(1 * MB, chip, latency_critical=True) == 3


class TestAssignment:
    def test_single_tenant_gets_requested_groups(self, manager):
        assignment = manager.assign("tenant-a", 2)
        assert assignment.num_groups == 2
        assert assignment.within_one_cluster

    def test_same_cluster_preferred(self, manager):
        assignment = manager.assign("a", 3)
        assert assignment.within_one_cluster

    def test_best_fit_packs_clusters(self, manager):
        manager.assign("a", 2)  # cluster 0 has 1 free
        b = manager.assign("b", 1)
        # best fit should place the single group in the fragmented cluster
        assert b.groups[0].cluster == 0
        c = manager.assign("c", 3)
        assert c.within_one_cluster

    def test_spill_across_clusters_when_needed(self, manager):
        manager.assign("a", 2)
        big = manager.assign("b", 4)
        assert not big.within_one_cluster

    def test_whole_chip_assignable(self, manager):
        assignment = manager.assign("everything", 6)
        assert assignment.num_groups == 6
        assert manager.free_groups() == []

    def test_double_assignment_rejected(self, manager):
        manager.assign("a", 1)
        with pytest.raises(ResourceError):
            manager.assign("a", 1)

    def test_overflow_rejected(self, manager):
        manager.assign("a", 5)
        with pytest.raises(ResourceError):
            manager.assign("b", 2)

    def test_bad_request_rejected(self, manager):
        with pytest.raises(ResourceError):
            manager.assign("a", 0)
        with pytest.raises(ResourceError):
            manager.assign("a", 7)

    def test_release_returns_groups(self, manager):
        manager.assign("a", 6)
        manager.release("a")
        assert len(manager.free_groups()) == 6

    def test_release_unknown_rejected(self, manager):
        with pytest.raises(ResourceError):
            manager.release("ghost")


class TestIsolation:
    def test_no_group_shared(self, manager):
        manager.assign("a", 2)
        manager.assign("b", 2)
        manager.assign("c", 2)
        manager.verify_isolation()
        owned = [manager.owner_of(group) for group in manager.all_groups()]
        assert None not in owned
        assert sorted(set(owned)) == ["a", "b", "c"]

    def test_owner_of_free_group_is_none(self, manager):
        assert manager.owner_of(GroupId(0, 0)) is None


@settings(max_examples=50, deadline=None)
@given(
    requests=st.lists(st.integers(1, 6), min_size=1, max_size=10),
    releases=st.lists(st.integers(0, 9), max_size=5),
)
def test_property_isolation_invariant_under_any_sequence(requests, releases):
    """Multi-tenancy safety: whatever happens, no group has two owners and
    accounting stays exact."""
    manager = ResourceManager(dtu2_config())
    live = []
    for index, count in enumerate(requests):
        tenant = f"tenant{index}"
        try:
            manager.assign(tenant, count)
            live.append(tenant)
        except ResourceError:
            pass
    for victim in releases:
        if victim < len(live) and live[victim] is not None:
            manager.release(live[victim])
            live[victim] = None
    manager.verify_isolation()
    owned = sum(
        assignment.num_groups for assignment in manager.assignments.values()
    )
    assert owned + len(manager.free_groups()) == 6
