"""Unit tests for the timed DMA engine, repeat mode and broadcast."""

import numpy as np
import pytest

from repro.core.config import dtu2_config
from repro.dma.broadcast import BroadcastError, broadcast_to_groups
from repro.dma.engine import DmaEngine, DmaRouteError
from repro.dma.repeat import RepeatDescriptor
from repro.dma.transforms import TransformError
from repro.memory.hierarchy import MemoryLevel
from repro.sim import Simulator

MB = 1 << 20


@pytest.fixture
def setup():
    sim = Simulator()
    chip = dtu2_config()
    l1 = MemoryLevel(sim, chip.l1_per_core, name="L1.test")
    l2 = MemoryLevel(sim, chip.l2_per_group, name="L2.test")
    l3 = MemoryLevel(sim, chip.l3, name="L3")
    return sim, l1, l2, l3


class TestRouting:
    def test_dtu2_allows_any_route(self, setup):
        sim, l1, l2, l3 = setup
        engine = DmaEngine(sim, allow_direct_l1_l3=True)
        engine.validate_route(l1, l3)
        engine.validate_route(l3, l1)
        engine.validate_route(l2, l2)

    def test_dtu1_blocks_l1_l3(self, setup):
        sim, l1, l2, l3 = setup
        engine = DmaEngine(sim, allow_direct_l1_l3=False)
        engine.validate_route(l1, l2)
        engine.validate_route(l2, l3)
        with pytest.raises(DmaRouteError):
            engine.validate_route(l1, l3)
        with pytest.raises(DmaRouteError):
            engine.validate_route(l2, l2)

    def test_unknown_level_rejected(self, setup):
        sim, l1, _l2, _l3 = setup
        from repro.core.config import MemoryLevelConfig

        odd = MemoryLevel(
            sim,
            MemoryLevelConfig("weird", 10, 1.0, 1, 1.0),
            name="scratch",
        )
        with pytest.raises(DmaRouteError):
            DmaEngine(sim).validate_route(l1, odd)


class TestTiming:
    def test_estimate_matches_simulation(self, setup):
        sim, _l1, l2, l3 = setup
        engine = DmaEngine(sim)
        estimate = engine.transfer_time_ns(4 * MB, l3, l2)
        sim.spawn(engine.transfer(4 * MB, l3, l2))
        sim.run()
        assert sim.now == pytest.approx(estimate, rel=0.01)

    def test_config_overhead_charged_per_configuration(self, setup):
        sim, _l1, l2, l3 = setup
        engine = DmaEngine(sim, config_overhead_ns=500.0)
        one = engine.transfer_time_ns(MB, l3, l2, configurations=1)
        nine = engine.transfer_time_ns(MB, l3, l2, configurations=9)
        assert nine - one == pytest.approx(8 * 500.0)

    def test_compressed_wire_is_faster(self, setup):
        sim, _l1, l2, l3 = setup
        engine = DmaEngine(sim)
        dense = engine.transfer_time_ns(8 * MB, l3, l2)
        sparse = engine.transfer_time_ns(8 * MB, l3, l2, wire_bytes=2 * MB)
        assert sparse < dense

    def test_stats_accumulate(self, setup):
        sim, _l1, l2, l3 = setup
        engine = DmaEngine(sim)
        sim.spawn(engine.transfer(MB, l3, l2, wire_bytes=MB // 4))
        sim.run()
        assert engine.stats.transactions == 1
        assert engine.stats.bytes_moved == MB
        assert engine.stats.wire_bytes == MB // 4
        assert engine.stats.configurations == 1


class TestHardwareBroadcast:
    def test_single_pass_writes_all_destinations(self, setup):
        sim, _l1, _l2, l3 = setup
        chip = dtu2_config()
        destinations = [
            MemoryLevel(sim, chip.l2_per_group, name=f"L2.g{i}") for i in range(3)
        ]
        engine = DmaEngine(sim)
        sim.spawn(engine.transfer(MB, l3, destinations, hardware_broadcast=True))
        sim.run()
        broadcast_time = sim.now
        assert engine.stats.bytes_moved == 3 * MB
        assert engine.stats.wire_bytes == MB  # source read once

        sim2 = Simulator()
        l3_b = MemoryLevel(sim2, chip.l3, name="L3")
        dests2 = [
            MemoryLevel(sim2, chip.l2_per_group, name=f"L2.h{i}") for i in range(3)
        ]
        serial = DmaEngine(sim2)
        sim2.spawn(serial.transfer(MB, l3_b, dests2, hardware_broadcast=False))
        sim2.run()
        assert sim2.now > broadcast_time
        assert serial.stats.wire_bytes == 3 * MB

    def test_estimate_broadcast_saves_passes(self, setup):
        sim, _l1, l2, l3 = setup
        engine = DmaEngine(sim)
        with_hw = engine.transfer_time_ns(MB, l3, l2, copies=3, hardware_broadcast=True)
        without = engine.transfer_time_ns(MB, l3, l2, copies=3, hardware_broadcast=False)
        assert without > with_hw


class TestFunctionalBroadcast:
    def test_copies_are_independent(self):
        stores = {0: {}, 1: {}, 2: {}}
        source = np.arange(6.0)
        result = broadcast_to_groups(source, stores, (0, 1, 2), "weights")
        stores[0]["weights"][0] = 99.0
        assert stores[1]["weights"][0] == 0.0
        assert result.total_bytes_written == 3 * source.nbytes
        assert result.source_reads == 1

    def test_software_fallback_reads_n_times(self):
        stores = {0: {}, 1: {}}
        result = broadcast_to_groups(
            np.zeros(4), stores, (0, 1), "w", hardware_broadcast=False
        )
        assert result.source_reads == 2

    def test_duplicate_destination_rejected(self):
        with pytest.raises(BroadcastError):
            broadcast_to_groups(np.zeros(2), {0: {}}, (0, 0), "w")

    def test_unknown_destination_rejected(self):
        with pytest.raises(BroadcastError):
            broadcast_to_groups(np.zeros(2), {0: {}}, (0, 5), "w")

    def test_empty_destinations_rejected(self):
        with pytest.raises(BroadcastError):
            broadcast_to_groups(np.zeros(2), {0: {}}, (), "w")


class TestRepeatMode:
    def test_fig6_slicing(self):
        """Fig. 6: 9 slices out of a large tensor, one configuration."""
        descriptor = RepeatDescriptor(dim=0, window=4, stride=4, count=9)
        tensor = np.arange(descriptor.required_extent() * 2).reshape(-1, 2)
        windows = descriptor.expand(tensor)
        assert len(windows) == 9
        assert all(window.shape == (4, 2) for window in windows)
        assert np.array_equal(windows[1], tensor[4:8])

    def test_overlapping_windows(self):
        descriptor = RepeatDescriptor(dim=0, window=4, stride=2, count=3)
        tensor = np.arange(descriptor.required_extent())
        windows = descriptor.expand(tensor)
        assert windows[0].tolist() == [0, 1, 2, 3]
        assert windows[1].tolist() == [2, 3, 4, 5]

    def test_configuration_savings(self):
        descriptor = RepeatDescriptor(dim=0, window=2, stride=2, count=10)
        assert descriptor.configurations_needed(repeat_mode=True) == 1
        assert descriptor.configurations_needed(repeat_mode=False) == 10
        assert descriptor.config_overhead_saved() == pytest.approx(0.9)

    def test_undersized_tensor_rejected(self):
        descriptor = RepeatDescriptor(dim=0, window=4, stride=4, count=9)
        with pytest.raises(TransformError):
            descriptor.expand(np.zeros((10, 2)))

    def test_degenerate_descriptor_rejected(self):
        with pytest.raises(TransformError):
            RepeatDescriptor(dim=0, window=0, stride=1, count=1)

    def test_repeat_plus_engine_end_to_end(self, setup):
        """Repeat mode cuts the timed cost of a 9-slice pattern (Fig. 6)."""
        sim, _l1, l2, l3 = setup
        engine = DmaEngine(sim, config_overhead_ns=1000.0)
        descriptor = RepeatDescriptor(dim=0, window=4, stride=4, count=9)
        slice_bytes = 64 * 1024
        with_repeat = engine.transfer_time_ns(
            9 * slice_bytes, l3, l2,
            configurations=descriptor.configurations_needed(True),
        )
        without = engine.transfer_time_ns(
            9 * slice_bytes, l3, l2,
            configurations=descriptor.configurations_needed(False),
        )
        assert without - with_repeat == pytest.approx(8 * 1000.0)
