"""Unit + property tests for the sparse DMA compression formats (§IV-C)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dma.sparse import (
    CompressedTensor,
    SparseCodecError,
    SparseFormat,
    best_format,
    compress,
    decompress,
)


def _sparse_tensor(shape, density, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape).astype(np.float32)
    mask = rng.random(shape) < density
    return data * mask


class TestRoundTrip:
    @pytest.mark.parametrize("format", list(SparseFormat))
    @pytest.mark.parametrize("density", [0.0, 0.05, 0.5, 1.0])
    def test_roundtrip_exact(self, format, density):
        tensor = _sparse_tensor((31, 17), density)
        compressed = compress(tensor, format)
        assert np.array_equal(decompress(compressed), tensor)

    @pytest.mark.parametrize("format", list(SparseFormat))
    def test_roundtrip_preserves_shape(self, format):
        tensor = _sparse_tensor((2, 3, 4), 0.3)
        assert decompress(compress(tensor, format)).shape == (2, 3, 4)

    @pytest.mark.parametrize("format", list(SparseFormat))
    def test_empty_tensor(self, format):
        tensor = np.zeros((0,), dtype=np.float32)
        assert decompress(compress(tensor, format)).size == 0

    def test_long_zero_runs_rle(self):
        tensor = np.zeros(200000, dtype=np.float32)
        tensor[123456] = 1.5
        compressed = compress(tensor, SparseFormat.RLE)
        assert np.array_equal(decompress(compressed), tensor)
        assert compressed.compression_ratio > 1000


class TestCompressionRatio:
    def test_sparser_compresses_better_bitmask(self):
        dense = compress(_sparse_tensor((64, 64), 0.9), SparseFormat.BITMASK)
        sparse = compress(_sparse_tensor((64, 64), 0.1), SparseFormat.BITMASK)
        assert sparse.compression_ratio > dense.compression_ratio

    def test_bitmask_ratio_formula(self):
        """Ratio ~= 1 / (density + 1/32) for FP32 payloads."""
        density = 0.25
        tensor = _sparse_tensor((256, 256), density)
        compressed = compress(tensor, SparseFormat.BITMASK)
        actual_density = float((tensor != 0).mean())
        expected = 1.0 / (actual_density + 1 / 32)
        assert compressed.compression_ratio == pytest.approx(expected, rel=0.05)

    def test_fully_dense_expands_slightly(self):
        tensor = _sparse_tensor((64, 64), 1.0)
        compressed = compress(tensor, SparseFormat.BITMASK)
        assert compressed.compression_ratio < 1.0

    def test_best_format_picks_smaller(self):
        runs = np.zeros(4096, dtype=np.float32)
        runs[::512] = 1.0  # long zero runs -> RLE wins
        assert best_format(runs) is SparseFormat.RLE
        scattered = _sparse_tensor((64, 64), 0.4)
        assert best_format(scattered) is SparseFormat.BITMASK


class TestMalformedPayloads:
    def test_truncated_bitmask_rejected(self):
        compressed = compress(_sparse_tensor((16, 16), 0.5), SparseFormat.BITMASK)
        broken = CompressedTensor(
            format=compressed.format,
            shape=compressed.shape,
            element_bytes=compressed.element_bytes,
            payload=compressed.payload[:8],
        )
        with pytest.raises(SparseCodecError):
            decompress(broken)

    def test_ragged_rle_rejected(self):
        compressed = compress(_sparse_tensor((16,), 0.5), SparseFormat.RLE)
        broken = CompressedTensor(
            format=compressed.format,
            shape=compressed.shape,
            element_bytes=compressed.element_bytes,
            payload=compressed.payload + b"x",
        )
        with pytest.raises(SparseCodecError):
            decompress(broken)

    def test_wrong_shape_rejected(self):
        compressed = compress(_sparse_tensor((16,), 0.5), SparseFormat.RLE)
        broken = CompressedTensor(
            format=compressed.format,
            shape=(32,),
            element_bytes=compressed.element_bytes,
            payload=compressed.payload,
        )
        with pytest.raises(SparseCodecError):
            decompress(broken)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.one_of(
            st.just(0.0),
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False, width=32
            ),
        ),
        min_size=0,
        max_size=300,
    ),
    format=st.sampled_from(list(SparseFormat)),
)
def test_property_roundtrip_any_payload(values, format):
    tensor = np.asarray(values, dtype=np.float32)
    assert np.array_equal(decompress(compress(tensor, format)), tensor)


@settings(max_examples=30, deadline=None)
@given(density=st.floats(0.0, 1.0), seed=st.integers(0, 100))
def test_property_compressed_bytes_positive_and_consistent(density, seed):
    tensor = _sparse_tensor((32, 32), density, seed)
    for format in SparseFormat:
        compressed = compress(tensor, format)
        assert compressed.compressed_bytes > 0
        assert compressed.dense_bytes == tensor.size * 4


class TestDegenerateInputs:
    """Satellite: empty tensors, all-zero tensors, flat sizes not a
    multiple of 8 (the bitmask pads its final mask byte)."""

    @pytest.mark.parametrize("format", list(SparseFormat))
    @pytest.mark.parametrize("shape", [(0,), (0, 7), (3, 0, 5)])
    def test_empty_tensor_roundtrip(self, format, shape):
        tensor = np.zeros(shape, dtype=np.float32)
        compressed = compress(tensor, format)
        restored = decompress(compressed)
        assert restored.shape == shape
        assert np.array_equal(restored, tensor)

    @pytest.mark.parametrize("format", list(SparseFormat))
    @pytest.mark.parametrize("shape", [(1,), (8,), (64, 64), (65537,)])
    def test_all_zero_tensor_roundtrip(self, format, shape):
        tensor = np.zeros(shape, dtype=np.float32)
        compressed = compress(tensor, format)
        assert np.array_equal(decompress(compressed), tensor)
        if tensor.size >= 64:
            # Large all-zero payloads must actually compress.
            assert compressed.compressed_bytes < compressed.dense_bytes

    @pytest.mark.parametrize("format", list(SparseFormat))
    @pytest.mark.parametrize("size", [1, 3, 5, 7, 9, 13, 63, 65])
    def test_size_not_multiple_of_8(self, format, size):
        tensor = _sparse_tensor((size,), density=0.4, seed=size)
        assert np.array_equal(decompress(compress(tensor, format)), tensor)


class TestRleFastPathPinning:
    """The vectorized RLE codec must be byte-identical to the loop."""

    CASES = [
        np.zeros(0, dtype=np.float32),
        np.zeros(5, dtype=np.float32),
        np.zeros(65535, dtype=np.float32),
        np.zeros(65536, dtype=np.float32),
        np.zeros(65537, dtype=np.float32),
        np.ones(7, dtype=np.float32),
        np.asarray([0, 0, 1, 0, 0, 0, 2, 0], dtype=np.float32),
        np.asarray([3, 0, 0], dtype=np.float32),
        np.concatenate(
            [np.zeros(131073, dtype=np.float32), np.ones(2, dtype=np.float32)]
        ),
        np.concatenate(
            [np.ones(1, dtype=np.float32), np.zeros(65536, dtype=np.float32)]
        ),
    ]

    @pytest.mark.parametrize("flat", CASES, ids=range(len(CASES)))
    def test_compress_byte_identical(self, flat):
        from repro.dma.sparse import _compress_rle, _compress_rle_loop

        assert _compress_rle(flat) == _compress_rle_loop(flat)

    @pytest.mark.parametrize("flat", CASES, ids=range(len(CASES)))
    def test_decompress_identical(self, flat):
        from repro.dma.sparse import _decompress_rle, _decompress_rle_loop

        compressed = compress(flat, SparseFormat.RLE)
        assert np.array_equal(
            _decompress_rle(compressed), _decompress_rle_loop(compressed)
        )

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, width=32),
            ),
            min_size=0,
            max_size=400,
        )
    )
    def test_property_byte_identical(self, values):
        from repro.dma.sparse import _compress_rle, _compress_rle_loop

        flat = np.asarray(values, dtype=np.float32)
        assert _compress_rle(flat) == _compress_rle_loop(flat)
