"""Unit + property tests for DMA on-the-fly layout transforms (§IV-C)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dma.transforms import (
    Broadcast,
    Pad,
    Reshape,
    Slice,
    TransformChain,
    TransformError,
    Transpose,
    concatenate,
)


class TestPad:
    def test_pads_requested_dim(self):
        array = np.ones((2, 3))
        out = Pad(dim=1, before=1, after=2).apply(array)
        assert out.shape == (2, 6)
        assert out[0, 0] == 0 and out[0, 1] == 1

    def test_pad_value(self):
        out = Pad(dim=0, before=1, after=0, value=7.0).apply(np.zeros((1, 2)))
        assert out[0].tolist() == [7.0, 7.0]

    def test_negative_padding_rejected(self):
        with pytest.raises(TransformError):
            Pad(dim=0, before=-1, after=0)

    def test_output_shape_matches_apply(self):
        pad = Pad(dim=-1, before=2, after=3)
        array = np.zeros((4, 5))
        assert pad.output_shape(array.shape) == pad.apply(array).shape

    def test_bad_dim_rejected(self):
        with pytest.raises(TransformError):
            Pad(dim=5, before=1, after=1).output_shape((2, 2))


class TestSlice:
    def test_basic_window(self):
        array = np.arange(10)
        assert Slice(0, 2, 6).apply(array).tolist() == [2, 3, 4, 5]

    def test_strided(self):
        array = np.arange(10)
        assert Slice(0, 0, 10, step=3).apply(array).tolist() == [0, 3, 6, 9]

    def test_out_of_bounds_rejected(self):
        with pytest.raises(TransformError):
            Slice(0, 0, 11).apply(np.arange(10))

    def test_backwards_rejected(self):
        with pytest.raises(TransformError):
            Slice(0, 5, 2)

    def test_shape_agrees(self):
        window = Slice(1, 1, 7, step=2)
        array = np.zeros((3, 9))
        assert window.output_shape(array.shape) == window.apply(array).shape


class TestTransposeReshapeBroadcast:
    def test_transpose_matches_numpy(self):
        array = np.arange(24).reshape(2, 3, 4)
        out = Transpose((2, 0, 1)).apply(array)
        assert np.array_equal(out, np.transpose(array, (2, 0, 1)))

    def test_transpose_bad_axes(self):
        with pytest.raises(TransformError):
            Transpose((0, 0, 1)).output_shape((2, 3, 4))

    def test_reshape_roundtrip(self):
        array = np.arange(12).reshape(3, 4)
        out = Reshape((2, 6)).apply(array)
        assert out.shape == (2, 6)

    def test_reshape_element_mismatch(self):
        with pytest.raises(TransformError):
            Reshape((5, 5)).output_shape((3, 4))

    def test_broadcast_materializes(self):
        array = np.array([[1.0], [2.0]])
        out = Broadcast(dim=1, size=3).apply(array)
        assert out.shape == (2, 3)
        assert out[1].tolist() == [2.0, 2.0, 2.0]

    def test_broadcast_requires_unit_dim(self):
        with pytest.raises(TransformError):
            Broadcast(dim=0, size=3).output_shape((2, 2))


class TestConcatenate:
    def test_matches_numpy(self):
        parts = [np.ones((2, 3)), np.zeros((2, 2))]
        out = concatenate(parts, dim=1)
        assert out.shape == (2, 5)

    def test_empty_rejected(self):
        with pytest.raises(TransformError):
            concatenate([], dim=0)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(TransformError):
            concatenate([np.zeros((2,)), np.zeros((2, 2))], dim=0)


class TestChain:
    def test_pipeline_composes(self):
        chain = TransformChain(
            (
                Pad(dim=0, before=1, after=1),
                Slice(dim=0, start=0, stop=3),
                Transpose((1, 0)),
            )
        )
        array = np.arange(8).reshape(2, 4).astype(float)
        out = chain.apply(array)
        assert out.shape == chain.output_shape(array.shape) == (4, 3)

    def test_moved_bytes(self):
        chain = TransformChain((Pad(dim=0, before=0, after=2),))
        assert chain.moved_bytes((2, 4), element_bytes=2) == 4 * 4 * 2

    def test_empty_chain_is_identity(self):
        chain = TransformChain()
        array = np.arange(6).reshape(2, 3)
        assert np.array_equal(chain.apply(array), array)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 8),
    cols=st.integers(1, 8),
    before=st.integers(0, 4),
    after=st.integers(0, 4),
)
def test_property_pad_then_slice_recovers(rows, cols, before, after):
    """pad(b, a) then slice(b, b+n) is the identity on the payload."""
    array = np.arange(rows * cols, dtype=float).reshape(rows, cols)
    padded = Pad(dim=0, before=before, after=after).apply(array)
    recovered = Slice(dim=0, start=before, stop=before + rows).apply(padded)
    assert np.array_equal(recovered, array)


@settings(max_examples=40, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)),
    seed=st.integers(0, 100),
)
def test_property_double_transpose_is_identity(shape, seed):
    rng = np.random.default_rng(seed)
    array = rng.normal(size=shape)
    axes = tuple(rng.permutation(3).tolist())
    inverse = tuple(int(np.argsort(axes)[i]) for i in range(3))
    once = Transpose(axes).apply(array)
    back = Transpose(inverse).apply(once)
    assert np.array_equal(back, array)
