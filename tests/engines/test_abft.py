"""ABFT checksums: localization, probe coverage, and the off pass-through.

Covers the detection math in :mod:`repro.engines.abft`: strict row+column
checksums localize the exact corrupted cell, the Freivalds probe catches
single-element corruption, tolerances admit fast-path reassociation
noise, and ``mode="off"`` is a bit-identical no-op.
"""

import numpy as np
import pytest

from repro.core.datatypes import DType
from repro.engines.abft import (
    DEFAULT_RTOL,
    AbftReport,
    checked_gemm,
    golden_digest,
    verify_gemm,
)
from repro.engines.matrix import MatrixEngine
from repro.faults import (
    FaultInjector,
    FaultPlan,
    MantissaBitFlipFault,
    SilentCorruptionFault,
    SilentCorruptor,
)


def _operands(seed=0, m=8, k=16, n=8):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


class TestVerifyGemm:
    def test_clean_result_passes_both_modes(self):
        a, b = _operands()
        c = a @ b
        for mode in ("probe", "strict"):
            report = verify_gemm(a, b, c, mode=mode)
            assert report.ok
            assert report.max_residual < 1.0

    def test_engine_fast_path_noise_sits_inside_tolerance(self):
        # The engine reassociates sums; the tolerance must absorb that.
        a, b = _operands(1, m=16, k=64, n=16)
        c = MatrixEngine(DType.FP32).gemm(a, b)
        assert verify_gemm(a, b, c, mode="strict").ok

    def test_strict_localizes_the_corrupted_cell(self):
        a, b = _operands(2)
        c = a @ b
        c[3, 5] += 0.25
        report = verify_gemm(a, b, c, mode="strict")
        assert not report.ok
        assert report.bad_rows == (3,)
        assert report.bad_cols == (5,)
        assert report.cells == ((3, 5),)
        assert report.max_residual > 1.0

    def test_probe_detects_a_single_corruption(self):
        a, b = _operands(3)
        c = a @ b
        c[2, 4] += 0.25
        report = verify_gemm(a, b, c, mode="probe")
        assert not report.ok
        assert 2 in report.bad_rows  # probe localizes rows only
        assert report.bad_cols == ()

    def test_probe_vector_is_seeded(self):
        a, b = _operands(4)
        c = a @ b
        c[0, 0] += 0.25
        first = verify_gemm(a, b, c, mode="probe", probe_seed=11)
        again = verify_gemm(a, b, c, mode="probe", probe_seed=11)
        assert first == again

    def test_off_mode_skips_everything(self):
        a, b = _operands(5)
        garbage = np.zeros_like(a @ b)  # blatantly wrong
        report = verify_gemm(a, b, garbage, mode="off")
        assert report == AbftReport(mode="off", ok=True)

    def test_sub_tolerance_perturbation_is_admitted(self):
        # Errors below rtol x magnitude are rounding, not corruption —
        # the documented boundary of the detection pledge.
        a, b = _operands(6)
        c = a @ b
        row_tolerance = DEFAULT_RTOL * float(
            (np.abs(a) @ (np.abs(b) @ np.ones(b.shape[1])))[0]
        )
        c[0, 0] += row_tolerance * 0.1
        assert verify_gemm(a, b, c, mode="strict").ok

    def test_shape_and_mode_validation(self):
        a, b = _operands(7)
        with pytest.raises(ValueError, match="mode"):
            verify_gemm(a, b, a @ b, mode="fuzzy")
        with pytest.raises(ValueError, match="shapes"):
            verify_gemm(a, b, (a @ b)[:-1], mode="strict")
        with pytest.raises(ValueError, match="2-D"):
            verify_gemm(a.ravel(), b, a @ b, mode="strict")

    def test_empty_result_is_trivially_ok(self):
        report = verify_gemm(
            np.zeros((0, 4)), np.zeros((4, 3)), np.zeros((0, 3)),
            mode="strict",
        )
        assert report.ok


class TestCheckedGemm:
    @staticmethod
    def _corrupting_engine(seed=3):
        # The injector is the detection ledger `undetected` consults.
        injector = FaultInjector(FaultPlan(), seed=seed, device="dev0")
        corruptor = SilentCorruptor(
            plan=FaultPlan(sdc_gemm_rate=1.0), seed=seed, device="dev0",
            injector=injector,
        )
        return MatrixEngine(DType.FP16, corruptor=corruptor), corruptor

    def test_off_mode_is_a_bit_identical_pass_through(self):
        a, b = _operands(8)
        engine = MatrixEngine(DType.FP32)
        np.testing.assert_array_equal(
            checked_gemm(engine, a, b, mode="off"),
            MatrixEngine(DType.FP32).gemm(a, b),
        )

    def test_clean_engine_passes_strict(self):
        a, b = _operands(9)
        engine = MatrixEngine(DType.FP32)
        result = checked_gemm(engine, a, b, mode="strict")
        np.testing.assert_allclose(result, a @ b, rtol=1e-6)

    def test_corruption_raises_the_typed_fault(self):
        a, b = _operands(10)
        engine, _ = self._corrupting_engine()
        with pytest.raises(MantissaBitFlipFault):
            checked_gemm(engine, a, b, mode="strict")

    def test_detection_marks_the_corruptor_events(self):
        a, b = _operands(11)
        engine, corruptor = self._corrupting_engine()
        with pytest.raises(SilentCorruptionFault):
            checked_gemm(engine, a, b, mode="strict")
        assert corruptor.events  # it did fire
        assert corruptor.undetected == []  # and ABFT claimed the event

    def test_mismatch_without_corruptor_still_raises(self):
        class LyingEngine(MatrixEngine):
            def gemm(self, a, b, tile_rows=None):
                result = super().gemm(a, b, tile_rows=tile_rows)
                result[0, 0] += 1.0
                return result

        a, b = _operands(12)
        with pytest.raises(SilentCorruptionFault, match="checksum mismatch"):
            checked_gemm(LyingEngine(DType.FP32), a, b, mode="strict")


class TestGoldenDigest:
    def test_digest_is_stable_for_equal_tensors(self):
        a, b = _operands(13)
        assert golden_digest(a @ b) == golden_digest(a @ b)

    def test_single_bit_corruption_changes_the_digest(self):
        a, b = _operands(14)
        clean = a @ b
        corrupt = clean.copy()
        bits = corrupt.reshape(-1).view(np.uint64)
        bits[0] ^= np.uint64(1)  # lowest mantissa bit of one element
        assert golden_digest(corrupt) != golden_digest(clean)

    def test_digest_covers_dtype_and_shape(self):
        array = np.ones((2, 8))
        assert golden_digest(array) != golden_digest(array.reshape(4, 4))
        assert golden_digest(array) != golden_digest(
            array.astype(np.float32)
        )
