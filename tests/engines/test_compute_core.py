"""Unit tests for the compute-core interpreter."""

import numpy as np
import pytest

from repro.core.datatypes import DType
from repro.engines.compute_core import ComputeCore, ExecutionError, L1Buffer
from repro.engines.vliw import Instruction, Packet, Program


class TestL1Buffer:
    def test_capacity_enforced(self):
        buffer = L1Buffer(capacity_bytes=100)
        buffer.write("a", np.zeros(10, dtype=np.float64))  # 80 bytes
        with pytest.raises(ExecutionError):
            buffer.write("b", np.zeros(4, dtype=np.float64))

    def test_overwrite_frees_old_size(self):
        buffer = L1Buffer(capacity_bytes=100)
        buffer.write("a", np.zeros(12, dtype=np.float64))
        buffer.write("a", np.zeros(10, dtype=np.float64))  # replace, fits
        assert buffer.used_bytes == 80

    def test_read_missing_raises(self):
        with pytest.raises(ExecutionError):
            L1Buffer(capacity_bytes=10).read("ghost")

    def test_free_is_idempotent(self):
        buffer = L1Buffer(capacity_bytes=100)
        buffer.write("a", np.zeros(2))
        buffer.free("a")
        buffer.free("a")
        assert buffer.used_bytes == 0


def _packet(*instructions):
    return Packet(tuple(instructions))


class TestExecution:
    def test_vector_add_program(self):
        core = ComputeCore()
        core.l1.write("x", np.arange(8.0))
        core.l1.write("y", np.ones(8))
        program = Program(
            packets=[
                _packet(Instruction("ld", "v0", imm=("x",))),
                _packet(Instruction("ld", "v1", imm=("y",))),
                _packet(Instruction("vadd", "v2", ("v0", "v1"))),
                _packet(Instruction("st", None, ("v2",), imm=("z",))),
            ]
        )
        cycles = core.run(program)
        assert np.array_equal(core.l1.read("z"), np.arange(8.0) + 1)
        assert cycles > 0

    def test_scalar_ops(self):
        core = ComputeCore()
        program = Program(
            packets=[
                _packet(Instruction("smov", "s0", imm=(3.0,))),
                _packet(Instruction("smov", "s1", imm=(4.0,))),
                _packet(Instruction("sadd", "s2", ("s0", "s1"))),
                _packet(Instruction("smul", "s3", ("s2", "s2"))),
            ]
        )
        core.run(program)
        assert core.state.scalar["s3"] == 49.0

    def test_vmm_through_isa(self):
        core = ComputeCore()
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(16, 16))
        vector = rng.normal(size=16)
        core.l1.write("w", matrix)
        core.state.vector["v0"] = vector
        program = Program(
            packets=[
                _packet(Instruction("mload", None, imm=("w", 0))),
                _packet(Instruction("vmm", "v1", ("v0",), imm=(0, 0))),
            ]
        )
        core.run(program)
        assert np.allclose(core.state.vector["v1"], vector @ matrix)

    def test_sfu_through_isa(self):
        core = ComputeCore()
        core.state.vector["v0"] = np.linspace(-2, 2, 8)
        program = Program(
            packets=[_packet(Instruction("sfu", "v1", ("v0",), imm=("tanh",)))]
        )
        core.run(program)
        assert np.allclose(core.state.vector["v1"], np.tanh(np.linspace(-2, 2, 8)), atol=1e-5)

    def test_composite_sfu_gelu(self):
        core = ComputeCore()
        core.state.vector["v0"] = np.array([1.0, -1.0])
        program = Program(
            packets=[_packet(Instruction("sfu", "v1", ("v0",), imm=("gelu",)))]
        )
        core.run(program)
        assert core.state.vector["v1"][0] == pytest.approx(0.8413, abs=1e-3)

    def test_vreduce_writes_scalar(self):
        core = ComputeCore()
        core.state.vector["v0"] = np.arange(4.0)
        program = Program(
            packets=[_packet(Instruction("vreduce", "s0", ("v0",), imm=("sum",)))]
        )
        core.run(program)
        assert core.state.scalar["s0"] == 6.0

    def test_vcmp_vsel(self):
        core = ComputeCore()
        core.state.vector["v0"] = np.array([1.0, 5.0])
        core.state.vector["v1"] = np.array([3.0, 3.0])
        program = Program(
            packets=[
                _packet(Instruction("vcmp", "v2", ("v0", "v1"), imm=("gt",))),
                _packet(Instruction("vsel", "v3", ("v2", "v0", "v1"))),
            ]
        )
        core.run(program)
        assert core.state.vector["v3"].tolist() == [3.0, 5.0]

    def test_halt_stops_execution(self):
        core = ComputeCore()
        program = Program(
            packets=[
                _packet(Instruction("smov", "s0", imm=(1.0,))),
                _packet(Instruction("halt")),
                _packet(Instruction("smov", "s0", imm=(2.0,))),
            ]
        )
        core.run(program)
        assert core.state.scalar["s0"] == 1.0

    def test_read_unwritten_register_raises(self):
        core = ComputeCore()
        program = Program(
            packets=[_packet(Instruction("vadd", "v2", ("v0", "v1")))]
        )
        with pytest.raises(ExecutionError):
            core.run(program)

    def test_load_slice(self):
        core = ComputeCore()
        core.l1.write("x", np.arange(100.0))
        program = Program(
            packets=[_packet(Instruction("ld", "v0", imm=("x", 10, 14)))]
        )
        core.run(program)
        assert core.state.vector["v0"].tolist() == [10.0, 11.0, 12.0, 13.0]

    def test_load_exceeding_lanes_raises(self):
        core = ComputeCore(dtype=DType.FP32)
        core.l1.write("x", np.zeros(100))
        program = Program(packets=[_packet(Instruction("ld", "v0", imm=("x",)))])
        with pytest.raises(ExecutionError):
            core.run(program)

    def test_stall_accounting(self):
        core = ComputeCore()
        core.state.vector["v1"] = np.ones(4)
        core.state.vector["v5"] = np.ones(4)  # same bank as v1
        program = Program(
            packets=[_packet(Instruction("vadd", "v2", ("v1", "v5")))]
        )
        core.run(program)
        assert core.stall_cycles == 1

    def test_fused_kernel_end_to_end(self):
        """A hand-written fused bias+gelu kernel, the §V-B DSL use-case."""
        core = ComputeCore()
        rng = np.random.default_rng(1)
        data = rng.normal(size=16)
        bias = rng.normal(size=16)
        core.l1.write("data", data)
        core.l1.write("bias", bias)
        program = Program(
            packets=[
                _packet(Instruction("ld", "v0", imm=("data",))),
                _packet(Instruction("ld", "v1", imm=("bias",))),
                _packet(Instruction("vadd", "v2", ("v0", "v1"))),
                _packet(Instruction("sfu", "v3", ("v2",), imm=("gelu",))),
                _packet(Instruction("st", None, ("v3",), imm=("out",))),
            ]
        )
        core.run(program)
        import math

        want = 0.5 * (data + bias) * (
            1 + np.vectorize(math.erf)((data + bias) / math.sqrt(2))
        )
        assert np.allclose(core.l1.read("out"), want, atol=1e-4)
