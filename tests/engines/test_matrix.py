"""Unit + property tests for the VMM matrix engine (paper Fig. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.datatypes import DType
from repro.engines.matrix import (
    MATRIX_REGISTER_ROWS,
    NUM_ACCUMULATION_REGISTERS,
    MatrixEngine,
    VmmPatternError,
    is_supported,
    supported_patterns,
)


def test_more_than_40_patterns():
    """Table II: 'More than 40 VMM patterns supported'."""
    assert len(supported_patterns()) > 40


def test_fp32_shapes_from_paper():
    """§IV-A1: FP32 supports 16x16, 8x16 and 4x16."""
    for rows in (16, 8, 4):
        assert is_supported(DType.FP32, rows, 16)


def test_pattern_vector_lengths():
    for pattern in supported_patterns():
        if pattern.transposed:
            assert pattern.vector_length == pattern.cols
        else:
            assert pattern.vector_length == pattern.rows
        assert pattern.macs == pattern.rows * pattern.cols


def test_pattern_rows_capped_at_register():
    for pattern in supported_patterns():
        assert pattern.rows <= MATRIX_REGISTER_ROWS


@pytest.fixture
def engine():
    return MatrixEngine(dtype=DType.FP32)


class TestLoadMatrix:
    def test_accepts_supported_shape(self, engine):
        engine.load_matrix(0, np.zeros((16, 16)))
        assert engine.matrix_registers[0] is not None

    def test_rejects_bad_slot(self, engine):
        with pytest.raises(VmmPatternError):
            engine.load_matrix(5, np.zeros((16, 16)))

    def test_rejects_too_many_rows(self, engine):
        with pytest.raises(VmmPatternError):
            engine.load_matrix(0, np.zeros((33, 16)))

    def test_rejects_too_wide_for_dtype(self, engine):
        # 17 FP32 columns exceed 512 bits
        with pytest.raises(VmmPatternError):
            engine.load_matrix(0, np.zeros((16, 17)))

    def test_rejects_1d(self, engine):
        with pytest.raises(VmmPatternError):
            engine.load_matrix(0, np.zeros(16))


class TestVmm:
    def test_matches_numpy(self, engine):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(16, 16))
        vector = rng.normal(size=16)
        engine.load_matrix(0, matrix)
        assert np.allclose(engine.vmm(vector), vector @ matrix)

    def test_rectangular_shapes(self, engine):
        rng = np.random.default_rng(1)
        for rows in (4, 8):
            matrix = rng.normal(size=(rows, 16))
            vector = rng.normal(size=rows)
            engine.load_matrix(0, matrix)
            assert np.allclose(engine.vmm(vector), vector @ matrix)

    def test_transposed(self, engine):
        rng = np.random.default_rng(2)
        matrix = rng.normal(size=(8, 16))
        vector = rng.normal(size=16)
        engine.load_matrix(0, matrix)
        result = engine.vmm(vector, transposed=True)
        assert np.allclose(result, vector @ matrix.T)

    def test_accumulation(self, engine):
        matrix = np.eye(16)
        vector = np.arange(16, dtype=float)
        engine.load_matrix(0, matrix)
        engine.vmm(vector, acc=3, accumulate=True)
        engine.vmm(vector, acc=3, accumulate=True)
        assert np.allclose(engine.read_accumulator(3), 2 * vector)

    def test_no_accumulate_overwrites(self, engine):
        matrix = np.eye(16)
        vector = np.ones(16)
        engine.load_matrix(0, matrix)
        engine.vmm(vector, acc=0, accumulate=True)
        engine.vmm(vector, acc=0, accumulate=False)
        assert np.allclose(engine.read_accumulator(0), vector)

    def test_empty_register_raises(self, engine):
        with pytest.raises(VmmPatternError):
            engine.vmm(np.zeros(16), slot=1)

    def test_unsupported_shape_raises(self, engine):
        engine.matrix_registers[0] = np.zeros((5, 16))  # bypass load check
        with pytest.raises(VmmPatternError):
            engine.vmm(np.zeros(5))

    def test_length_mismatch_raises(self, engine):
        engine.load_matrix(0, np.zeros((16, 16)))
        with pytest.raises(VmmPatternError):
            engine.vmm(np.zeros(8))

    def test_accumulator_bounds(self, engine):
        engine.load_matrix(0, np.zeros((16, 16)))
        with pytest.raises(VmmPatternError):
            engine.vmm(np.zeros(16), acc=NUM_ACCUMULATION_REGISTERS)

    def test_mac_accounting(self, engine):
        engine.load_matrix(0, np.zeros((16, 16)))
        engine.vmm(np.zeros(16))
        assert engine.macs_executed == 256
        assert engine.vmm_issued == 1


class TestGemm:
    def test_matches_numpy_square(self, engine):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(16, 16))
        b = rng.normal(size=(16, 16))
        assert np.allclose(engine.gemm(a, b), a @ b)

    def test_matches_numpy_ragged(self, engine):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(5, 37))
        b = rng.normal(size=(37, 21))
        assert np.allclose(engine.gemm(a, b), a @ b)

    def test_tall_skinny(self, engine):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(1, 100))
        b = rng.normal(size=(100, 3))
        assert np.allclose(engine.gemm(a, b), a @ b)

    def test_bad_shapes_raise(self, engine):
        with pytest.raises(VmmPatternError):
            engine.gemm(np.zeros((3, 4)), np.zeros((5, 6)))

    def test_fp16_lane_count(self):
        engine = MatrixEngine(dtype=DType.FP16)
        assert engine.lanes == 32
        rng = np.random.default_rng(6)
        a = rng.normal(size=(4, 40))
        b = rng.normal(size=(40, 33))
        assert np.allclose(engine.gemm(a, b), a @ b)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(1, 12),
    k=st.integers(1, 40),
    n=st.integers(1, 40),
    seed=st.integers(0, 2**31),
)
def test_property_gemm_equals_numpy(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, k))
    b = rng.normal(size=(k, n))
    assert np.allclose(MatrixEngine().gemm(a, b), a @ b)


def test_clear_accumulator_then_read_raises(engine):
    engine.load_matrix(0, np.eye(16))
    engine.vmm(np.ones(16), acc=7)
    engine.clear_accumulator(7)
    with pytest.raises(VmmPatternError):
        engine.read_accumulator(7)
