"""Pins the vectorized ``MatrixEngine.gemm`` to ``gemm_reference``.

The fast path must be observably identical to the per-tile loop: same
IEEE-754 results bit for bit, same tiles issued, same MAC count, same
accumulator and matrix-register state, same trace counters, same error
behavior on unsupported patterns. Anything less would let a performance
change silently alter the architectural model.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.datatypes import DType
from repro.engines.matrix import (
    NUM_ACCUMULATION_REGISTERS,
    MatrixEngine,
    VmmPatternError,
)
from repro.sim.trace import Trace


def _operands(m: int, k: int, n: int, seed: int = 0, transform: str = "plain"):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    if transform == "aT":
        a = np.ascontiguousarray(rng.standard_normal((k, m)).T)
    elif transform == "bT":
        b = np.ascontiguousarray(rng.standard_normal((n, k)).T)
    elif transform == "neg":
        a, b = -np.abs(a), -np.abs(b)
    return a, b


def _run_both(dtype, m, k, n, seed=0, transform="plain", tile_rows=None):
    a, b = _operands(m, k, n, seed, transform)
    fast = MatrixEngine(dtype)
    fast.trace = Trace()
    reference = MatrixEngine(dtype)
    reference.trace = Trace()
    out_fast = fast.gemm(a, b, tile_rows=tile_rows)
    out_ref = reference.gemm_reference(a, b, tile_rows=tile_rows)
    return fast, out_fast, reference, out_ref


def _assert_identical(fast, out_fast, reference, out_ref):
    # Bit-identical outputs, not approximately equal.
    assert np.array_equal(out_fast, out_ref)
    assert out_fast.dtype == out_ref.dtype
    # Identical architectural charges.
    assert fast.vmm_issued == reference.vmm_issued
    assert fast.macs_executed == reference.macs_executed
    assert fast.trace.counters == reference.trace.counters
    # Identical visible register-file state (same slots touched, same values).
    assert set(fast.accumulators) == set(reference.accumulators)
    for slot in fast.accumulators:
        assert slot < NUM_ACCUMULATION_REGISTERS
        assert np.array_equal(fast.accumulators[slot], reference.accumulators[slot])
    assert np.array_equal(fast.matrix_registers[0], reference.matrix_registers[0])


ODD_SHAPES = [
    (1, 1, 1),
    (3, 5, 7),
    (5, 33, 17),
    (17, 64, 100),
    (64, 96, 48),
    (2, 511, 3),
]


@pytest.mark.parametrize("shape", ODD_SHAPES)
@pytest.mark.parametrize("dtype", list(DType))
def test_identical_over_odd_shapes_all_dtypes(shape, dtype):
    m, k, n = shape
    _assert_identical(*_run_both(dtype, m, k, n))


@pytest.mark.parametrize("transform", ["plain", "aT", "bT", "neg"])
def test_identical_over_memory_layouts(transform):
    """Transposed views and sign-skewed operands change nothing."""
    _assert_identical(*_run_both(DType.FP16, 9, 40, 70, transform=transform))


@pytest.mark.parametrize("tile_rows", [4, 8, 16])
def test_identical_with_explicit_tile_rows(tile_rows):
    _assert_identical(*_run_both(DType.FP32, 7, 37, 21, tile_rows=tile_rows))


@settings(max_examples=40, deadline=None)
@given(
    m=st.integers(1, 24),
    k=st.integers(1, 80),
    n=st.integers(1, 80),
    seed=st.integers(0, 50),
    dtype=st.sampled_from([DType.FP32, DType.FP16, DType.BF16, DType.INT8]),
)
def test_property_identical(m, k, n, seed, dtype):
    _assert_identical(*_run_both(dtype, m, k, n, seed=seed))


def test_unsupported_pattern_raises_with_same_register_state():
    """The reference loop loads the first tile before vmm() rejects the
    pattern; the fast path must reproduce both the error and the side
    effect."""
    a, b = _operands(4, 16, 16)
    fast = MatrixEngine(DType.FP32)
    with pytest.raises(VmmPatternError):
        fast.gemm(a, b, tile_rows=3)
    reference = MatrixEngine(DType.FP32)
    with pytest.raises(VmmPatternError):
        reference.gemm_reference(a, b, tile_rows=3)
    assert np.array_equal(fast.matrix_registers[0], reference.matrix_registers[0])
    assert fast.vmm_issued == reference.vmm_issued == 0


def test_empty_dimension_matches_reference():
    """Degenerate extents behave exactly like the loop: m == 0 and n == 0
    return empty results; k == 0 raises (the loop never fills an
    accumulator before reading it back)."""
    for m, k, n in [(0, 4, 4), (4, 4, 0)]:
        fast, out_fast, reference, out_ref = _run_both(DType.FP16, m, k, n)
        assert out_fast.shape == out_ref.shape == (m, n)
        assert fast.vmm_issued == reference.vmm_issued
    a, b = _operands(4, 0, 4)
    with pytest.raises(VmmPatternError):
        MatrixEngine(DType.FP16).gemm(a, b)
    with pytest.raises(VmmPatternError):
        MatrixEngine(DType.FP16).gemm_reference(a, b)


def test_speedup_at_least_20x_on_acceptance_shape():
    """ISSUE acceptance: >= 20x on 64x256x256 with bit-identical results."""
    a, b = _operands(64, 256, 256, seed=7)

    fast = MatrixEngine(DType.FP16)
    start = time.perf_counter()
    out_fast = fast.gemm(a, b)
    fast_s = time.perf_counter() - start

    reference = MatrixEngine(DType.FP16)
    start = time.perf_counter()
    out_ref = reference.gemm_reference(a, b)
    ref_s = time.perf_counter() - start

    assert np.array_equal(out_fast, out_ref)
    assert fast.vmm_issued == reference.vmm_issued
    assert fast.macs_executed == reference.macs_executed
    assert ref_s / fast_s >= 20.0, (
        f"fast path only {ref_s / fast_s:.1f}x faster "
        f"({fast_s * 1e3:.1f} ms vs {ref_s * 1e3:.1f} ms)"
    )
