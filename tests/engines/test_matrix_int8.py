"""Tests for the INT8 VMM mode (Table I's 256 TOPS path)."""

import numpy as np
import pytest

from repro.core.datatypes import DType
from repro.engines.matrix import MatrixEngine, VmmPatternError
from repro.quant import QuantizationScale


def _quantize_pair(rng, rows, cols):
    vector = rng.normal(size=rows)
    matrix = rng.normal(size=(rows, cols))
    v_scale = QuantizationScale("v", float(np.abs(vector).max()) / 127)
    m_scale = QuantizationScale("m", float(np.abs(matrix).max()) / 127)
    return (
        vector, matrix,
        v_scale.quantize(vector), m_scale.quantize(matrix),
        v_scale.scale, m_scale.scale,
    )


class TestQuantizedVmm:
    def test_matches_fp_within_quantization_noise(self):
        rng = np.random.default_rng(0)
        engine = MatrixEngine(dtype=DType.FP32)
        vector, matrix, q_v, q_m, s_v, s_m = _quantize_pair(rng, 16, 16)
        result = engine.vmm_quantized(q_v, q_m, s_v, s_m)
        exact = vector @ matrix
        tolerance = 16 * (s_v * 127 * s_m / 2 + s_m * 127 * s_v / 2)
        assert np.max(np.abs(result - exact)) < tolerance

    def test_integer_accumulation_is_exact(self):
        """Same codes twice must produce bit-identical results (no per-MAC
        rounding, unlike naive FP16 accumulation)."""
        rng = np.random.default_rng(1)
        engine = MatrixEngine(dtype=DType.FP32)
        _v, _m, q_v, q_m, s_v, s_m = _quantize_pair(rng, 8, 16)
        first = engine.vmm_quantized(q_v, q_m, s_v, s_m)
        second = engine.vmm_quantized(q_v, q_m, s_v, s_m)
        assert np.array_equal(first, second)

    def test_dequantization_scale_applied(self):
        engine = MatrixEngine(dtype=DType.FP32)
        q_v = np.ones(4)
        q_m = np.ones((4, 16))
        result = engine.vmm_quantized(q_v, q_m, 0.5, 0.25)
        assert np.allclose(result, 4 * 0.5 * 0.25)

    def test_out_of_range_codes_rejected(self):
        engine = MatrixEngine(dtype=DType.FP32)
        with pytest.raises(VmmPatternError):
            engine.vmm_quantized(np.full(4, 128.0), np.ones((4, 16)), 1.0, 1.0)

    def test_fractional_codes_rejected(self):
        engine = MatrixEngine(dtype=DType.FP32)
        with pytest.raises(VmmPatternError):
            engine.vmm_quantized(np.full(4, 0.5), np.ones((4, 16)), 1.0, 1.0)

    def test_macs_charged_like_fp(self):
        engine = MatrixEngine(dtype=DType.FP32)
        engine.vmm_quantized(np.ones(16), np.ones((16, 16)), 1.0, 1.0)
        assert engine.macs_executed == 256
