"""Unit + accuracy tests for the SFU (LUT + quadratic Taylor, §IV-A2)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.engines.sfu import SpecialFunctionUnit


@pytest.fixture(scope="module")
def sfu():
    return SpecialFunctionUnit()


def test_around_ten_functions_accelerated(sfu):
    """Table II: 'Around 10 transcendental functions are accelerated'."""
    assert 8 <= len(sfu.supported_functions) <= 12


def test_unknown_function_raises(sfu):
    with pytest.raises(ValueError):
        sfu.evaluate("bessel", 1.0)


def test_too_small_lut_rejected():
    with pytest.raises(ValueError):
        SpecialFunctionUnit(entries=2)


ACCURACY_CASES = [
    ("exp", np.exp, (-10.0, 10.0), 1e-4),
    ("tanh", np.tanh, (-6.0, 6.0), 1e-5),
    ("sigmoid", lambda x: 1 / (1 + np.exp(-x)), (-12.0, 12.0), 1e-5),
    ("log", np.log, (0.1, 60.0), 1e-4),
    ("sqrt", np.sqrt, (0.1, 60.0), 1e-4),
    ("rsqrt", lambda x: 1 / np.sqrt(x), (0.5, 60.0), 1e-4),
    ("reciprocal", lambda x: 1 / x, (0.5, 60.0), 1e-4),
    ("erf", np.vectorize(math.erf), (-3.5, 3.5), 1e-5),
    ("softplus", lambda x: np.log1p(np.exp(x)), (-10.0, 10.0), 1e-4),
]


@pytest.mark.parametrize("name,reference,domain,tolerance", ACCURACY_CASES)
def test_primitive_accuracy(sfu, name, reference, domain, tolerance):
    """The quadratic Taylor step must be FP16-grade accurate in-range."""
    x = np.linspace(domain[0], domain[1], 4001)
    got = sfu.evaluate(name, x)
    want = reference(x)
    scale = np.maximum(np.abs(want), 1.0)
    assert np.max(np.abs(got - want) / scale) < tolerance


def test_clamping_saturates_out_of_range(sfu):
    assert sfu.evaluate("tanh", 100.0) == pytest.approx(1.0, abs=1e-4)
    assert sfu.evaluate("sigmoid", -100.0) == pytest.approx(0.0, abs=1e-4)


def test_scalar_input_works(sfu):
    assert float(sfu.evaluate("exp", 0.0)) == pytest.approx(1.0, abs=1e-5)


class TestCompositeActivations:
    def test_gelu_matches_reference(self, sfu):
        x = np.linspace(-4, 4, 801)
        want = 0.5 * x * (1 + np.vectorize(math.erf)(x / math.sqrt(2)))
        assert np.max(np.abs(sfu.gelu(x) - want)) < 1e-4

    def test_gelu_tanh_form_close_to_exact(self, sfu):
        x = np.linspace(-3, 3, 601)
        assert np.max(np.abs(sfu.gelu_tanh(x) - sfu.gelu(x))) < 0.01

    def test_swish_matches_reference(self, sfu):
        x = np.linspace(-6, 6, 601)
        want = x / (1 + np.exp(-x))
        assert np.max(np.abs(sfu.swish(x) - want)) < 1e-4

    def test_softmax_sums_to_one(self, sfu):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 50)) * 10
        probabilities = sfu.softmax(logits, axis=-1)
        assert np.allclose(probabilities.sum(axis=-1), 1.0, atol=1e-6)
        assert np.all(probabilities >= 0)

    def test_softmax_is_shift_invariant(self, sfu):
        logits = np.array([1.0, 2.0, 3.0])
        assert np.allclose(
            sfu.softmax(logits), sfu.softmax(logits + 1000.0), atol=1e-6
        )

    def test_softmax_matches_scipy(self, sfu):
        from scipy.special import softmax as scipy_softmax

        rng = np.random.default_rng(1)
        logits = rng.normal(size=32)
        assert np.allclose(sfu.softmax(logits), scipy_softmax(logits), atol=1e-5)


def test_trace_counts_evaluations():
    from repro.sim import Trace

    trace = Trace()
    sfu = SpecialFunctionUnit(trace=trace)
    sfu.evaluate("tanh", np.zeros(100))
    assert trace.counters["sfu.tanh"] == 100


def test_more_entries_more_accuracy():
    coarse = SpecialFunctionUnit(entries=64)
    fine = SpecialFunctionUnit(entries=4096)
    x = np.linspace(-5, 5, 1001)
    err_coarse = np.max(np.abs(coarse.tanh(x) - np.tanh(x)))
    err_fine = np.max(np.abs(fine.tanh(x) - np.tanh(x)))
    assert err_fine < err_coarse


@given(st.floats(min_value=-8.0, max_value=8.0, allow_nan=False))
def test_property_tanh_odd_symmetry(x):
    sfu = SpecialFunctionUnit()
    assert float(sfu.tanh(x)) == pytest.approx(-float(sfu.tanh(-x)), abs=1e-6)


@given(st.floats(min_value=-12.0, max_value=12.0, allow_nan=False))
def test_property_sigmoid_complement(x):
    sfu = SpecialFunctionUnit()
    assert float(sfu.sigmoid(x)) + float(sfu.sigmoid(-x)) == pytest.approx(
        1.0, abs=1e-5
    )
