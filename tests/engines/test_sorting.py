"""Unit + property tests for the VMM-assisted sorter / Top-K (paper Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.datatypes import DType
from repro.engines.matrix import MatrixEngine, VmmPatternError
from repro.engines.sorting import (
    order_vector,
    relationship_matrix,
    sort_vector,
    top_k,
    transformation_matrix,
)


class TestRelationshipMatrix:
    def test_simple_descending(self):
        rel = relationship_matrix(np.array([3.0, 1.0, 2.0]))
        # element 0 (value 3) outranks both others; nothing precedes it
        assert rel[0].tolist() == [0, 0, 0]
        # element 1 (value 1): both 3 and 2 precede it
        assert rel[1].tolist() == [1, 0, 1]

    def test_diagonal_always_zero(self):
        rel = relationship_matrix(np.arange(8.0))
        assert np.all(np.diag(rel) == 0)

    def test_tie_break_by_index(self):
        rel = relationship_matrix(np.array([5.0, 5.0]))
        # earlier index precedes later on ties (stability)
        assert rel[1, 0] == 1 and rel[0, 1] == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            relationship_matrix(np.zeros((2, 2)))


class TestOrderVector:
    def test_ranks_descending(self):
        rel = relationship_matrix(np.array([3.0, 1.0, 2.0]))
        assert order_vector(rel).tolist() == [0, 2, 1]

    def test_ranks_ascending(self):
        data = np.array([3.0, 1.0, 2.0])
        rel = relationship_matrix(data, descending=False)
        assert order_vector(rel).tolist() == [2, 0, 1]

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            order_vector(np.zeros((2, 3)))


class TestTransformationMatrix:
    def test_is_permutation_matrix(self):
        transform = transformation_matrix(np.array([2, 0, 1]))
        assert np.all(transform.sum(axis=0) == 1)
        assert np.all(transform.sum(axis=1) == 1)

    def test_applies_order(self):
        order = np.array([2, 0, 1])  # element j goes to position order[j]
        transform = transformation_matrix(order)
        data = np.array([10.0, 20.0, 30.0])
        assert (transform @ data).tolist() == [20.0, 30.0, 10.0]

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            transformation_matrix(np.array([0, 0, 1]))


class TestSortVector:
    def test_descending(self):
        data = np.array([1.0, 4.0, -2.0, 9.0])
        result = sort_vector(MatrixEngine(), data)
        assert result.tolist() == [9.0, 4.0, 1.0, -2.0]

    def test_ascending(self):
        data = np.array([1.0, 4.0, -2.0, 9.0])
        result = sort_vector(MatrixEngine(), data, descending=False)
        assert result.tolist() == [-2.0, 1.0, 4.0, 9.0]

    def test_with_duplicates(self):
        data = np.array([2.0, 2.0, 1.0, 2.0])
        result = sort_vector(MatrixEngine(), data)
        assert result.tolist() == [2.0, 2.0, 2.0, 1.0]

    def test_full_lane_width(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=16)
        result = sort_vector(MatrixEngine(), data)
        assert np.allclose(result, np.sort(data)[::-1])

    def test_oversized_input_raises(self):
        with pytest.raises(VmmPatternError):
            sort_vector(MatrixEngine(), np.zeros(17))

    def test_uses_vmm_hardware(self):
        engine = MatrixEngine()
        sort_vector(engine, np.array([3.0, 1.0]))
        assert engine.vmm_issued == 1

    def test_int8_lane_width(self):
        """INT8 has 64 lanes but the matrix register caps sorts at 32."""
        engine = MatrixEngine(dtype=DType.INT8)
        rng = np.random.default_rng(1)
        data = rng.integers(-50, 50, size=32).astype(float)
        assert np.allclose(sort_vector(engine, data), np.sort(data)[::-1])
        with pytest.raises(VmmPatternError):
            sort_vector(engine, np.zeros(33))


class TestTopK:
    def test_small_k(self):
        data = np.array([5.0, 1.0, 9.0, 3.0])
        values, indices = top_k(MatrixEngine(), data, 2)
        assert values.tolist() == [9.0, 5.0]
        assert indices.tolist() == [2, 0]

    def test_k_equals_n(self):
        data = np.array([2.0, 7.0, 4.0])
        values, _ = top_k(MatrixEngine(), data, 3)
        assert values.tolist() == [7.0, 4.0, 2.0]

    def test_smallest(self):
        data = np.array([5.0, 1.0, 9.0, 3.0])
        values, _ = top_k(MatrixEngine(), data, 2, largest=False)
        assert values.tolist() == [1.0, 3.0]

    def test_spanning_many_chunks(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=500)
        values, indices = top_k(MatrixEngine(), data, 10)
        assert np.allclose(values, np.sort(data)[::-1][:10])
        assert np.allclose(data[indices], values)

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            top_k(MatrixEngine(), np.zeros(4), 5)
        with pytest.raises(ValueError):
            top_k(MatrixEngine(), np.zeros(4), 0)

    def test_duplicates_get_distinct_indices(self):
        data = np.array([7.0, 7.0, 7.0, 1.0])
        values, indices = top_k(MatrixEngine(), data, 3)
        assert values.tolist() == [7.0, 7.0, 7.0]
        assert sorted(indices.tolist()) == [0, 1, 2]


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=16,
    ),
    descending=st.booleans(),
)
def test_property_sort_matches_numpy(data, descending):
    array = np.asarray(data)
    result = sort_vector(MatrixEngine(), array, descending=descending)
    expected = np.sort(array)
    if descending:
        expected = expected[::-1]
    assert np.allclose(result, expected)


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=120,
    ),
    k=st.integers(1, 10),
)
def test_property_topk_matches_numpy(data, k):
    array = np.asarray(data)
    if k > array.size:
        k = array.size
    values, indices = top_k(MatrixEngine(), array, k)
    assert np.allclose(values, np.sort(array)[::-1][:k])
    assert np.allclose(array[indices], values)
    assert len(set(indices.tolist())) == k
