"""Unit + property tests for the 512-bit vector engine."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.datatypes import DType
from repro.engines.vector import VectorEngine, VectorLengthError, lanes_for


def test_lane_counts_by_width():
    assert lanes_for(DType.FP32) == 16
    assert lanes_for(DType.FP16) == 32
    assert lanes_for(DType.BF16) == 32
    assert lanes_for(DType.INT8) == 64


@pytest.fixture
def engine():
    return VectorEngine(dtype=DType.FP32)


class TestBinary:
    def test_add(self, engine):
        a = np.arange(8, dtype=float)
        b = np.ones(8)
        assert np.array_equal(engine.binary("add", a, b), a + 1)

    def test_all_binary_ops_match_numpy(self, engine):
        rng = np.random.default_rng(7)
        a = rng.normal(size=16)
        b = rng.normal(size=16) + 2.0
        expected = {
            "add": a + b, "sub": a - b, "mul": a * b, "div": a / b,
            "max": np.maximum(a, b), "min": np.minimum(a, b),
        }
        for op, want in expected.items():
            assert np.allclose(engine.binary(op, a, b), want), op

    def test_exceeding_lanes_raises(self, engine):
        long = np.zeros(17)
        with pytest.raises(VectorLengthError):
            engine.binary("add", long, long)

    def test_shape_mismatch_raises(self, engine):
        with pytest.raises(VectorLengthError):
            engine.binary("add", np.zeros(4), np.zeros(5))

    def test_2d_operand_raises(self, engine):
        square = np.zeros((4, 4))
        with pytest.raises(VectorLengthError):
            engine.binary("add", square, square)

    def test_unknown_op_raises(self, engine):
        with pytest.raises(ValueError):
            engine.binary("xor", np.zeros(4), np.zeros(4))


class TestUnaryAndFma:
    def test_relu_clamps_negatives(self, engine):
        data = np.array([-2.0, -0.5, 0.0, 3.0])
        assert np.array_equal(engine.unary("relu", data), [0, 0, 0, 3.0])

    def test_fma(self, engine):
        a, b, c = np.full(4, 2.0), np.full(4, 3.0), np.full(4, 1.0)
        assert np.array_equal(engine.fma(a, b, c), np.full(4, 7.0))

    def test_fma_shape_mismatch(self, engine):
        with pytest.raises(VectorLengthError):
            engine.fma(np.zeros(4), np.zeros(4), np.zeros(5))


class TestReduceCompareSelect:
    def test_reductions(self, engine):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        assert engine.reduce("sum", data) == 10.0
        assert engine.reduce("max", data) == 4.0
        assert engine.reduce("min", data) == 1.0
        assert engine.reduce("prod", data) == 24.0

    def test_reduce_empty_raises(self, engine):
        with pytest.raises(VectorLengthError):
            engine.reduce("sum", np.zeros(0))

    def test_compare_produces_mask(self, engine):
        a = np.array([1.0, 5.0, 3.0])
        b = np.array([2.0, 2.0, 3.0])
        assert np.array_equal(engine.compare("lt", a, b), [1.0, 0.0, 0.0])
        assert np.array_equal(engine.compare("ge", a, b), [0.0, 1.0, 1.0])
        assert np.array_equal(engine.compare("eq", a, b), [0.0, 0.0, 1.0])

    def test_select_routes_by_mask(self, engine):
        mask = np.array([1.0, 0.0, 1.0])
        a = np.array([10.0, 20.0, 30.0])
        b = np.array([-1.0, -2.0, -3.0])
        assert np.array_equal(engine.select(mask, a, b), [10.0, -2.0, 30.0])


def test_ops_counter_and_trace():
    from repro.sim import Trace

    trace = Trace()
    engine = VectorEngine(trace=trace)
    engine.binary("add", np.zeros(4), np.zeros(4))
    engine.unary("relu", np.zeros(4))
    assert engine.ops_executed == 2
    assert trace.counters["vector.add"] == 1
    assert trace.counters["vector.relu"] == 1


@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=16,
    )
)
def test_property_fma_equals_mul_then_add(data):
    engine = VectorEngine()
    a = np.asarray(data)
    fused = engine.fma(a, a, a)
    split = engine.binary("add", engine.binary("mul", a, a), a)
    assert np.allclose(fused, split)


@given(
    data=st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=16,
    )
)
def test_property_reduce_sum_matches_numpy(data):
    engine = VectorEngine()
    assert engine.reduce("sum", np.asarray(data)) == pytest.approx(
        float(np.sum(np.asarray(data, dtype=np.float64))), rel=1e-12, abs=1e-9
    )
