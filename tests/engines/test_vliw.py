"""Unit tests for the VLIW instruction/packet model."""

import pytest

from repro.engines.vliw import (
    IllegalPacketError,
    Instruction,
    Packet,
    Program,
    REGISTER_BANKS,
    Slot,
    register_bank,
)


def test_unknown_opcode_rejected():
    with pytest.raises(IllegalPacketError):
        Instruction("frobnicate")


def test_slots_assigned_by_opcode():
    assert Instruction("vadd", "v0", ("v1", "v2")).slot is Slot.VECTOR
    assert Instruction("vmm", "v0", ("v1",)).slot is Slot.MATRIX
    assert Instruction("ld", "v0", imm=("x",)).slot is Slot.LOAD
    assert Instruction("sfu", "v0", ("v1",), imm=("tanh",)).slot is Slot.SFU


def test_register_bank_is_index_mod_banks():
    assert register_bank("v0") == 0
    assert register_bank("v4") == 0
    assert register_bank("v5") == 1
    assert register_bank("t13") == 13 % REGISTER_BANKS


def test_register_bank_requires_index():
    with pytest.raises(ValueError):
        register_bank("vx")


class TestPacketLegality:
    def test_empty_packet_rejected(self):
        with pytest.raises(IllegalPacketError):
            Packet(())

    def test_slot_reuse_rejected(self):
        add = Instruction("vadd", "v0", ("v1", "v2"))
        mul = Instruction("vmul", "v3", ("v4", "v5"))
        with pytest.raises(IllegalPacketError):
            Packet((add, mul))

    def test_different_slots_allowed(self):
        packet = Packet(
            (
                Instruction("vadd", "v0", ("v1", "v2")),
                Instruction("smov", "s0", imm=(1.0,)),
                Instruction("ld", "v3", imm=("x",)),
            )
        )
        assert len(packet.instructions) == 3

    def test_intra_packet_raw_rejected(self):
        producer = Instruction("vadd", "v0", ("v1", "v2"))
        consumer = Instruction("sfu", "v3", ("v0",), imm=("tanh",))
        with pytest.raises(IllegalPacketError):
            Packet((producer, consumer))

    def test_intra_packet_waw_rejected(self):
        a = Instruction("vadd", "v0", ("v1", "v2"))
        b = Instruction("ld", "v0", imm=("x",))
        with pytest.raises(IllegalPacketError):
            Packet((a, b))


class TestPacketTiming:
    def test_latency_is_slowest_slot(self):
        packet = Packet(
            (
                Instruction("vadd", "v0", ("v1", "v2")),  # 1 cycle
                Instruction("sfu", "v3", ("v4",), imm=("exp",)),  # 4 cycles
            )
        )
        assert packet.latency == 4

    def test_bank_conflicts_counted(self):
        # v1 and v5 share bank 1; v2 is bank 2 -> one conflict
        packet = Packet(
            (
                Instruction("vadd", "v0", ("v1", "v5")),
                Instruction("smov", "s0", imm=(0.0,)),
            )
        )
        assert packet.bank_conflicts() == 1
        assert packet.stall_cycles == 1

    def test_no_conflict_across_banks(self):
        packet = Packet((Instruction("vadd", "v0", ("v1", "v2")),))
        assert packet.bank_conflicts() == 0

    def test_three_way_conflict_counts_two(self):
        packet = Packet(
            (
                Instruction("vfma", "v0", ("v1", "v5", "v9")),
            )
        )
        assert packet.bank_conflicts() == 2


class TestProgram:
    def _program(self):
        return Program(
            packets=[
                Packet((Instruction("ld", "v0", imm=("x",)),)),
                Packet((Instruction("vadd", "v1", ("v0", "v0")),)),
                Packet((Instruction("st", None, ("v1",), imm=("y",)),)),
            ]
        )

    def test_instruction_count(self):
        assert self._program().instruction_count == 3

    def test_cycle_count_sums_latencies(self):
        # ld(2) + vadd(1 + 1 stall: v0,v0 same bank... v0 twice counts once
        # per unique register? no: registers_read is a tuple with v0 twice ->
        # bank 0 seen twice -> 1 stall) + st(2)
        assert self._program().cycle_count == 2 + (1 + 1) + 2

    def test_code_bytes(self):
        program = self._program()
        assert program.code_bytes == 3 * 16 + 3 * 4
