"""Fault injection through the detailed simulator + Device.launch RAS."""

import pytest

from repro.engines.compute_core import ComputeCore
from repro.engines.vliw import Instruction, Packet, Program
from repro.faults import (
    CoreHangFault,
    DeadlineExceededError,
    FaultInjector,
    FaultPlan,
    TransientFault,
)
from repro.graph.builder import GraphBuilder
from repro.runtime.runtime import Device


def _tiny_graph():
    builder = GraphBuilder("tiny")
    x = builder.input("x", (1, 8, 32, 32))
    y = builder.conv2d(x, 16, 3, pad=1)
    y = builder.relu(y)
    y = builder.conv2d(y, 16, 3, pad=1)
    return builder.finish([y])


def _launch(plan=None, **launch_kwargs):
    device = Device.open("i20")
    injector = None
    if plan is not None:
        injector = FaultInjector(plan)
        device.accelerator.attach_faults(injector)
    compiled = device.compile(_tiny_graph())
    result = device.launch(compiled, num_groups=3, **launch_kwargs)
    return result, injector


TRANSIENT = FaultPlan(
    seed=7,
    dma_corrupt_rate=0.15,
    ecc_ce_rate=0.10,
    sync_loss_rate=0.10,
    core_slowdown_rate=0.20,
)


class TestZeroOverheadDefault:
    def test_disabled_plan_is_bit_identical(self):
        baseline, _ = _launch()
        zeroed, injector = _launch(FaultPlan())
        assert zeroed.latency_ns == baseline.latency_ns
        assert zeroed.energy_joules == baseline.energy_joules
        assert injector.records == []

    def test_detach_restores_baseline(self):
        baseline, _ = _launch()
        device = Device.open("i20")
        device.accelerator.attach_faults(FaultInjector(TRANSIENT))
        device.accelerator.attach_faults(None)
        result = device.launch(device.compile(_tiny_graph()), num_groups=3)
        assert result.latency_ns == baseline.latency_ns


class TestTransientFaults:
    def test_transient_faults_add_latency(self):
        baseline, _ = _launch()
        faulty, injector = _launch(TRANSIENT)
        assert faulty.latency_ns > baseline.latency_ns
        assert injector.records
        assert all(record.recovered for record in injector.records)

    def test_same_seed_reproduces_fault_sequence(self):
        first, injector_a = _launch(TRANSIENT)
        second, injector_b = _launch(TRANSIENT)
        assert first.latency_ns == second.latency_ns
        assert injector_a.records == injector_b.records

    def test_fault_counters_exported(self):
        faulty, injector = _launch(TRANSIENT)
        assert faulty.counters["faults_injected"] == len(injector.records)
        assert faulty.counters["faults_recovered"] == len(injector.records)
        assert "dma_replays" in faulty.counters
        assert "sync_lost_events" in faulty.counters


class TestFatalFaultsAndRetry:
    ABORTY = FaultPlan(seed=3, dma_abort_rate=0.05)

    def _first_failing_launch(self):
        """A (device, compiled) pair whose first launch raises."""
        device = Device.open("i20")
        device.accelerator.attach_faults(FaultInjector(self.ABORTY))
        compiled = device.compile(_tiny_graph())
        return device, compiled

    def test_fatal_fault_raises_typed_exception(self):
        device, compiled = self._first_failing_launch()
        with pytest.raises(TransientFault) as info:
            # some seed-dependent prefix of launches may pass cleanly
            for _ in range(500):
                device.launch(compiled, num_groups=3)
        assert getattr(info.value, "elapsed_ns", 0.0) > 0.0

    def test_retry_with_backoff_recovers(self):
        device, compiled = self._first_failing_launch()
        result = device.launch(compiled, num_groups=3, max_retries=50)
        assert result.latency_ns > 0
        # the accelerator is reusable after a failed-and-retried launch
        again = device.launch(compiled, num_groups=3, max_retries=50)
        assert again.latency_ns > 0

    def test_retry_overhead_included_in_latency(self):
        baseline, _ = _launch()
        device, compiled = self._first_failing_launch()
        result = device.launch(
            compiled, num_groups=3, max_retries=50, retry_backoff_ms=0.5
        )
        retries = result.counters.get("launch_retries", 0)
        if retries:
            assert result.latency_ns > baseline.latency_ns
            assert result.counters["retry_overhead_ns"] > 0

    def test_deadline_exceeded_raises(self):
        with pytest.raises(DeadlineExceededError):
            _launch(None, deadline_ms=1e-9)

    def test_generous_deadline_passes(self):
        result, _ = _launch(None, deadline_ms=1e6)
        assert result.latency_ns > 0


class TestComputeCoreHangHook:
    def _program(self):
        packet = Packet((Instruction("smov", dest="s0", imm=(1.0,)),))
        return Program([packet])

    def test_no_injector_runs_clean(self):
        core = ComputeCore()
        assert core.run(self._program()) >= 0
        assert core.state.scalar["s0"] == 1.0

    def test_injected_hang_raises_watchdog_fault(self):
        core = ComputeCore(fault_injector=FaultInjector(FaultPlan(core_hang_rate=1.0)))
        with pytest.raises(CoreHangFault):
            core.run(self._program())
        assert core.halted
