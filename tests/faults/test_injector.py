"""Unit tests for FaultPlan / FaultInjector (determinism, hooks, records)."""

import pytest

from repro.faults import (
    CoreHangFault,
    DeadlineExceededError,
    DmaTransferFault,
    FaultInjector,
    FaultPlan,
    HardwareFault,
    PermanentFault,
    SyncTimeoutError,
    TransientFault,
    UncorrectableEccError,
)
from repro.core.errors import ReproRuntimeError


class TestFaultPlan:
    def test_default_plan_is_disabled(self):
        assert not FaultPlan().enabled

    def test_any_rate_enables(self):
        assert FaultPlan(dma_corrupt_rate=0.01).enabled
        assert FaultPlan(sync_loss_rate=0.5).enabled

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(dma_corrupt_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(ecc_ue_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(core_slowdown_factor=0.5)
        with pytest.raises(ValueError):
            FaultPlan(dma_retry_limit=-1)

    def test_aggregate_rates(self):
        plan = FaultPlan(dma_corrupt_rate=0.1, ecc_ce_rate=0.1)
        assert plan.transient_event_rate == pytest.approx(1 - 0.9 * 0.9)
        assert plan.fatal_event_rate == 0.0
        fatal = FaultPlan(dma_abort_rate=0.1, ecc_ue_rate=0.1, core_hang_rate=0.1)
        assert fatal.fatal_event_rate == pytest.approx(1 - 0.9**3)


class TestHierarchy:
    def test_fault_exceptions_extend_repro_runtime_error(self):
        for exc in (
            DmaTransferFault, UncorrectableEccError, CoreHangFault,
            SyncTimeoutError, TransientFault, PermanentFault,
            DeadlineExceededError,
        ):
            assert issubclass(exc, ReproRuntimeError)

    def test_transient_vs_permanent_split(self):
        assert issubclass(DmaTransferFault, TransientFault)
        assert issubclass(UncorrectableEccError, TransientFault)
        assert issubclass(CoreHangFault, TransientFault)
        assert not issubclass(PermanentFault, TransientFault)
        assert issubclass(TransientFault, HardwareFault)


class TestInjectorDeterminism:
    def _drive(self, injector, n=200):
        outcomes = []
        for step in range(n):
            outcomes.append(injector.dma_outcome("dma", f"t{step}", float(step)))
            outcomes.append(injector.ecc_outcome("L2", float(step)))
            outcomes.append(
                injector.perturb_compute("k", "g", 100.0, float(step))
            )
            outcomes.append(injector.sync_lost("sync", "b", float(step)))
        return outcomes

    def test_same_seed_same_sequence(self):
        plan = FaultPlan(
            seed=42, dma_corrupt_rate=0.1, dma_abort_rate=0.02,
            ecc_ce_rate=0.1, ecc_ue_rate=0.02, core_hang_rate=0.02,
            core_slowdown_rate=0.1, sync_loss_rate=0.1,
        )
        a, b = FaultInjector(plan), FaultInjector(plan)
        assert self._drive(a) == self._drive(b)
        assert a.records == b.records

    def test_different_seeds_differ(self):
        kwargs = dict(dma_corrupt_rate=0.2, ecc_ce_rate=0.2, sync_loss_rate=0.2)
        a = FaultInjector(FaultPlan(seed=1, **kwargs))
        b = FaultInjector(FaultPlan(seed=2, **kwargs))
        assert self._drive(a) != self._drive(b)

    def test_zero_rates_draw_nothing(self):
        injector = FaultInjector(FaultPlan())
        assert all(
            outcome in (None, False, 0.0, 100.0) for outcome in self._drive(injector)
        )
        assert injector.records == []
        assert not injector.fatal_pending


class TestInjectorHooks:
    def test_dma_abort_queues_fatal(self):
        injector = FaultInjector(FaultPlan(dma_abort_rate=1.0))
        assert injector.dma_outcome("dma.x", "label", 5.0) == "abort"
        assert injector.fatal_pending
        fault = injector.take_fatal()
        assert isinstance(fault, DmaTransferFault)
        assert not injector.fatal_pending
        assert injector.take_fatal() is None

    def test_ecc_ce_returns_penalty(self):
        injector = FaultInjector(FaultPlan(ecc_ce_rate=1.0, ecc_retry_ns=333.0))
        assert injector.ecc_outcome("L2", 0.0) == 333.0
        assert injector.records[0].recovered

    def test_ecc_ue_is_fatal(self):
        injector = FaultInjector(FaultPlan(ecc_ue_rate=1.0))
        injector.ecc_outcome("L3", 0.0)
        assert isinstance(injector.take_fatal(), UncorrectableEccError)

    def test_hang_burns_watchdog_window(self):
        injector = FaultInjector(
            FaultPlan(core_hang_rate=1.0, watchdog_timeout_ns=9999.0)
        )
        assert injector.perturb_compute("k", "g", 10.0, 0.0) == 9999.0
        assert isinstance(injector.take_fatal(), CoreHangFault)

    def test_slowdown_scales_compute(self):
        injector = FaultInjector(
            FaultPlan(core_slowdown_rate=1.0, core_slowdown_factor=3.0)
        )
        assert injector.perturb_compute("k", "g", 10.0, 0.0) == 30.0
        assert not injector.fatal_pending

    def test_counters_aggregate_by_kind(self):
        injector = FaultInjector(FaultPlan(ecc_ce_rate=1.0))
        injector.ecc_outcome("L2", 0.0)
        injector.ecc_outcome("L2", 1.0)
        counters = injector.counters()
        assert counters["faults_injected"] == 2
        assert counters["faults_recovered"] == 2
        assert counters["fault.ecc.ce"] == 2
