"""FaultSchedule / StormPhase: windows, ramps, kills, rate composition."""

import pytest

from repro.core.errors import ReproRuntimeError
from repro.faults import FaultPlan, FaultSchedule, StormPhase


def _s(seconds):
    return seconds * 1e9


class TestStormPhase:
    def test_window_is_half_open(self):
        phase = StormPhase(0.1, 0.2, FaultPlan(dma_corrupt_rate=0.5))
        assert not phase.active(_s(0.0999), device=0)
        assert phase.active(_s(0.1), device=0)
        assert phase.active(_s(0.1999), device=0)
        assert not phase.active(_s(0.2), device=0)

    def test_device_targeting(self):
        phase = StormPhase(
            0.0, 1.0, FaultPlan(dma_corrupt_rate=0.5), devices=(1, 3)
        )
        assert phase.active(_s(0.5), device=1)
        assert phase.active(_s(0.5), device=3)
        assert not phase.active(_s(0.5), device=0)
        assert not phase.active(_s(0.5), device=2)

    def test_untargeted_phase_hits_every_device(self):
        phase = StormPhase(0.0, 1.0, FaultPlan(dma_corrupt_rate=0.5))
        assert all(phase.active(_s(0.5), device=d) for d in range(8))

    def test_ramp_intensity_grows_linearly(self):
        phase = StormPhase(
            0.0, 1.0, FaultPlan(dma_corrupt_rate=0.8), ramp=True
        )
        assert phase.intensity(_s(0.0)) == 0.0
        assert phase.intensity(_s(0.5)) == pytest.approx(0.5)
        assert phase.intensity(_s(1.0)) == 1.0
        flat = StormPhase(0.0, 1.0, FaultPlan(dma_corrupt_rate=0.8))
        assert flat.intensity(_s(0.01)) == 1.0

    def test_kill_is_a_certain_fatal_on_one_device(self):
        phase = StormPhase.kill(device=2, at_s=0.1, duration_s=0.3)
        assert phase.plan.dma_abort_rate == 1.0
        assert phase.plan.fatal_event_rate == 1.0
        assert phase.devices == (2,)
        assert phase.active(_s(0.2), device=2)
        assert not phase.active(_s(0.2), device=0)
        assert not phase.active(_s(0.45), device=2)

    def test_invalid_windows_rejected(self):
        with pytest.raises(ReproRuntimeError, match="start"):
            StormPhase(-0.1, 0.2, FaultPlan())
        with pytest.raises(ReproRuntimeError, match="empty"):
            StormPhase(0.2, 0.2, FaultPlan())
        with pytest.raises(ReproRuntimeError, match="empty"):
            StormPhase(0.3, 0.2, FaultPlan())

    def test_zero_duration_kill_rejected(self):
        with pytest.raises(ReproRuntimeError, match="empty"):
            StormPhase.kill(device=0, at_s=0.1, duration_s=0.0)


class TestFaultSchedule:
    def test_empty_schedule_is_quiet_and_returns_base(self):
        schedule = FaultSchedule()
        assert schedule.quiet
        assert schedule.plan_at(_s(0.5), 0) == FaultPlan()
        assert schedule.rates_at(_s(0.5), 0) == (0.0, 0.0)
        assert schedule.horizon_s() == 0.0

    def test_base_plan_applies_outside_storms(self):
        base = FaultPlan(dma_corrupt_rate=0.01)
        schedule = FaultSchedule(
            base=base,
            phases=(StormPhase(0.5, 0.6, FaultPlan(ecc_ce_rate=0.5)),),
        )
        assert not schedule.quiet
        assert schedule.plan_at(_s(0.1), 0) == base
        assert schedule.plan_at(_s(0.7), 0) == base

    def test_storm_rates_compose_as_survival_products(self):
        schedule = FaultSchedule(
            base=FaultPlan(dma_corrupt_rate=0.1),
            phases=(
                StormPhase(0.0, 1.0, FaultPlan(dma_corrupt_rate=0.2)),
                StormPhase(0.0, 1.0, FaultPlan(dma_corrupt_rate=0.5)),
            ),
        )
        plan = schedule.plan_at(_s(0.5), 0)
        assert plan.dma_corrupt_rate == pytest.approx(
            1.0 - 0.9 * 0.8 * 0.5
        )

    def test_stacked_certain_kills_never_exceed_one(self):
        schedule = FaultSchedule(
            phases=(
                StormPhase.kill(0, 0.0, 1.0),
                StormPhase.kill(0, 0.0, 1.0),
            )
        )
        plan = schedule.plan_at(_s(0.5), 0)
        assert plan.dma_abort_rate == 1.0  # a valid FaultPlan, not 2.0

    def test_penalties_come_from_the_base_plan(self):
        base = FaultPlan(ecc_retry_ns=1234.0)
        schedule = FaultSchedule(
            base=base,
            phases=(StormPhase(0.0, 1.0, FaultPlan(ecc_ce_rate=0.5)),),
        )
        plan = schedule.plan_at(_s(0.5), 0)
        assert plan.ecc_retry_ns == 1234.0
        assert plan.ecc_ce_rate == 0.5

    def test_ramped_storm_scales_the_rate(self):
        schedule = FaultSchedule(
            phases=(
                StormPhase(
                    0.0, 1.0, FaultPlan(dma_corrupt_rate=0.8), ramp=True
                ),
            )
        )
        assert schedule.plan_at(_s(0.0), 0).dma_corrupt_rate == 0.0
        assert schedule.plan_at(
            _s(0.5), 0
        ).dma_corrupt_rate == pytest.approx(0.4)

    def test_per_device_storms_leave_others_clean(self):
        schedule = FaultSchedule(
            phases=(StormPhase.kill(device=1, at_s=0.0, duration_s=1.0),)
        )
        assert schedule.rates_at(_s(0.5), 1) == (0.0, 1.0)
        assert schedule.rates_at(_s(0.5), 0) == (0.0, 0.0)

    def test_horizon_is_the_last_storm_end(self):
        schedule = FaultSchedule(
            phases=(
                StormPhase(0.1, 0.2, FaultPlan(ecc_ce_rate=0.1)),
                StormPhase(0.05, 0.7, FaultPlan(ecc_ce_rate=0.1)),
            )
        )
        assert schedule.horizon_s() == 0.7


class TestSilentRateComposition:
    """silent_rate_at / any_silent: the SDC defense's exposure oracle."""

    def test_silent_free_schedules_report_zero(self):
        assert not FaultSchedule().any_silent
        noisy = FaultSchedule(
            phases=(StormPhase(0.0, 1.0, FaultPlan(dma_corrupt_rate=0.5)),)
        )
        assert not noisy.any_silent  # loud faults are not silent faults
        assert noisy.silent_rate_at(_s(0.5), 0) == 0.0

    def test_silent_rates_compose_as_survival_products(self):
        schedule = FaultSchedule(
            base=FaultPlan(sdc_gemm_rate=0.1),
            phases=(
                StormPhase(0.0, 1.0, FaultPlan(sdc_dma_rate=0.2)),
                StormPhase(0.0, 1.0, FaultPlan(sdc_sparse_rate=0.5)),
            ),
        )
        assert schedule.any_silent
        assert schedule.silent_rate_at(_s(0.5), 0) == pytest.approx(
            1.0 - 0.9 * 0.8 * 0.5
        )

    def test_overlapping_windows_compose_only_in_the_overlap(self):
        schedule = FaultSchedule(
            phases=(
                StormPhase(0.1, 0.3, FaultPlan(sdc_gemm_rate=0.2)),
                StormPhase(0.2, 0.4, FaultPlan(sdc_gemm_rate=0.5)),
            ),
        )
        assert schedule.silent_rate_at(_s(0.15), 0) == pytest.approx(0.2)
        assert schedule.silent_rate_at(_s(0.25), 0) == pytest.approx(
            1.0 - 0.8 * 0.5
        )
        assert schedule.silent_rate_at(_s(0.35), 0) == pytest.approx(0.5)

    def test_rate_composition_at_half_open_window_boundaries(self):
        # Windows are [start, end): exactly at the second phase's start
        # both storms compose; exactly at the first phase's end only the
        # second survives; exactly at the last end everything is quiet.
        schedule = FaultSchedule(
            phases=(
                StormPhase(0.1, 0.3, FaultPlan(sdc_gemm_rate=0.2)),
                StormPhase(0.2, 0.4, FaultPlan(sdc_gemm_rate=0.5)),
            ),
        )
        assert schedule.silent_rate_at(_s(0.1), 0) == pytest.approx(0.2)
        assert schedule.silent_rate_at(_s(0.2), 0) == pytest.approx(
            1.0 - 0.8 * 0.5
        )
        assert schedule.silent_rate_at(_s(0.3), 0) == pytest.approx(0.5)
        assert schedule.silent_rate_at(_s(0.4), 0) == 0.0

    def test_device_targeted_silent_storm_spares_the_rest(self):
        schedule = FaultSchedule(
            phases=(
                StormPhase(
                    0.0, 1.0, FaultPlan(sdc_gemm_rate=0.5), devices=(1,)
                ),
            ),
        )
        assert schedule.any_silent
        assert schedule.silent_rate_at(_s(0.5), 1) == pytest.approx(0.5)
        assert schedule.silent_rate_at(_s(0.5), 0) == 0.0

    def test_ramped_silent_storm_scales_the_rate(self):
        schedule = FaultSchedule(
            phases=(
                StormPhase(
                    0.0, 1.0, FaultPlan(sdc_gemm_rate=0.8), ramp=True
                ),
            )
        )
        assert schedule.silent_rate_at(_s(0.0), 0) == 0.0
        assert schedule.silent_rate_at(_s(0.5), 0) == pytest.approx(0.4)
