"""SilentCorruptor: seeded, recorded, never-raising numeric corruption.

The injection contract under test: a corruptor with a zero rate is a
bit-identical no-op that consumes no randomness; a firing corruptor
changes exactly one element, raises nothing, and leaves a
``detected=False`` FaultRecord as its only trace.
"""

import numpy as np
import pytest

from repro.core.datatypes import DType
from repro.dma.sparse import SparseFormat, compress, decompress
from repro.engines.matrix import MatrixEngine
from repro.faults import (
    FaultInjector,
    FaultPlan,
    MantissaBitFlipFault,
    SilentCorruptionFault,
    SilentCorruptor,
    ValueScaleFault,
)


def _array(seed=0, shape=(4, 8)):
    return np.random.default_rng(seed).standard_normal(shape)


def _corruptor(seed=0, injector=None, **plan):
    return SilentCorruptor(
        plan=FaultPlan(**plan), seed=seed, device="dev0", injector=injector
    )


class TestDetachedPath:
    def test_zero_rate_returns_the_same_object_untouched(self):
        corruptor = _corruptor()
        array = _array()
        before = array.copy()
        out = corruptor.corrupt_gemm(array)
        assert out is array
        np.testing.assert_array_equal(out, before)
        assert corruptor.events == []

    def test_zero_rates_consume_no_randomness(self):
        quiet = _corruptor(seed=5)
        for _ in range(10):
            quiet.corrupt_gemm(_array())
            quiet.corrupt_dma(_array())
            quiet.corrupt_sparse(_array())
        # The stream is still at its origin: a fresh corruptor with the
        # same seed fires the same first draw.
        fresh = _corruptor(seed=5, sdc_gemm_rate=1.0)
        late = _corruptor(seed=5, sdc_gemm_rate=1.0)
        a, b = _array(1), _array(1)
        fresh.corrupt_gemm(a)
        late.corrupt_gemm(b)
        np.testing.assert_array_equal(a, b)

    def test_engine_without_corruptor_is_bit_identical(self):
        a, b = _array(1, (8, 16)), _array(2, (16, 8))
        plain = MatrixEngine(DType.FP32).gemm(a, b)
        attached = MatrixEngine(DType.FP32, corruptor=_corruptor()).gemm(a, b)
        np.testing.assert_array_equal(plain, attached)


class TestInjection:
    def test_certain_rate_corrupts_exactly_one_element(self):
        corruptor = _corruptor(sdc_gemm_rate=1.0)
        array = _array()
        before = array.copy()
        corruptor.corrupt_gemm(array)
        changed = np.flatnonzero(array.reshape(-1) != before.reshape(-1))
        assert changed.size == 1
        event = corruptor.events[0]
        assert event.site == "gemm"
        assert int(changed[0]) == event.index
        assert array.reshape(-1)[event.index] == event.corrupted
        assert np.isfinite(event.corrupted)

    def test_same_seed_reproduces_the_same_corruption(self):
        first, second = _array(3), _array(3)
        _corruptor(seed=9, sdc_gemm_rate=1.0).corrupt_gemm(first)
        _corruptor(seed=9, sdc_gemm_rate=1.0).corrupt_gemm(second)
        np.testing.assert_array_equal(first, second)

    def test_all_three_sites_fire_their_own_rates(self):
        corruptor = _corruptor(
            sdc_gemm_rate=1.0, sdc_dma_rate=1.0, sdc_sparse_rate=1.0
        )
        corruptor.corrupt_gemm(_array(1))
        corruptor.corrupt_dma(_array(2))
        corruptor.corrupt_sparse(_array(3))
        assert [e.site for e in corruptor.events] == ["gemm", "dma", "sparse"]

    def test_mantissa_mode_keeps_the_error_honestly_detectable(self):
        corruptor = _corruptor(sdc_gemm_rate=1.0)
        array = _array(4)
        corruptor.corrupt_gemm(array)
        event = corruptor.events[0]
        relative = abs(event.corrupted - event.original) / abs(event.original)
        assert relative >= 2.0 ** -13  # bits 40..51 of the 52-bit mantissa
        assert isinstance(event.fault, MantissaBitFlipFault)
        assert isinstance(event.fault, SilentCorruptionFault)

    def test_scale_mode_multiplies_by_the_plan_factor(self):
        corruptor = _corruptor(
            sdc_gemm_rate=1.0, sdc_mode="scale", sdc_scale_factor=2.0
        )
        array = _array(5)
        corruptor.corrupt_gemm(array)
        event = corruptor.events[0]
        assert event.corrupted == pytest.approx(event.original * 2.0)
        assert isinstance(event.fault, ValueScaleFault)

    def test_defective_core_attribution_is_plan_pinned(self):
        corruptor = _corruptor(sdc_gemm_rate=1.0, sdc_cores=(3,))
        for seed in range(4):
            corruptor.corrupt_gemm(_array(seed))
        assert all(event.core == 3 for event in corruptor.events)

    def test_all_zero_array_fires_no_event(self):
        corruptor = _corruptor(sdc_gemm_rate=1.0)
        array = np.zeros((4, 4))
        corruptor.corrupt_gemm(array)
        np.testing.assert_array_equal(array, np.zeros((4, 4)))
        assert corruptor.events == []


class TestInjectorLedger:
    def test_records_land_undetected_with_device_identity(self):
        injector = FaultInjector(FaultPlan(), seed=0, device="dev0")
        corruptor = _corruptor(injector=injector, sdc_gemm_rate=1.0)
        corruptor.corrupt_gemm(_array(), time_ns=42.0)
        (record,) = injector.records
        assert record.kind == "sdc.gemm"
        assert record.detected is False and record.method == ""
        assert record.recovered is False
        assert record.device == "dev0"
        assert injector.counters()["faults_silent"] == 1.0
        assert injector.counters()["faults_fatal"] == 0.0  # nothing raised

    def test_mark_detected_drains_the_silent_backlog(self):
        injector = FaultInjector(FaultPlan(), seed=0)
        corruptor = _corruptor(injector=injector, sdc_gemm_rate=1.0)
        corruptor.corrupt_gemm(_array())
        (event,) = corruptor.undetected
        corruptor.mark_detected(event, "abft")
        assert corruptor.undetected == []
        assert injector.silent_records == []
        (record,) = injector.records
        assert record.detected is True and record.method == "abft"
        assert "faults_silent" not in injector.counters()


class TestSparseCodecSite:
    @staticmethod
    def _dense():
        # The codec's wire format is float32; feed it native elements so
        # the detached roundtrip is exact.
        dense = _array(7, (8, 8)).astype(np.float32)
        dense[dense < 0.5] = 0.0
        return dense

    def test_detached_decompress_roundtrips_exactly(self):
        dense = self._dense()
        compressed = compress(dense, SparseFormat.BITMASK)
        np.testing.assert_array_equal(decompress(compressed), dense)

    def test_corrupted_decompress_differs_in_one_element(self):
        dense = self._dense()
        compressed = compress(dense, SparseFormat.BITMASK)
        corruptor = _corruptor(sdc_sparse_rate=1.0)
        out = decompress(compressed, corruptor=corruptor)
        diffs = np.flatnonzero(out.reshape(-1) != dense.reshape(-1))
        assert diffs.size == 1
        assert corruptor.events[0].site == "sparse"
