"""Unit tests for GraphBuilder and shape inference (incl. dynamic shapes)."""

import pytest

from repro.core.datatypes import DType
from repro.graph.builder import GraphBuilder
from repro.graph.ir import GraphError
from repro.graph.shape_inference import bind_shapes, dynamic_symbols, infer_shapes


class TestBuilder:
    def test_quickstart_docstring_example(self):
        builder = GraphBuilder("tiny")
        x = builder.input("x", (1, 3, 32, 32))
        y = builder.conv2d(x, out_channels=8, kernel=3, pad=1)
        y = builder.relu(y)
        graph = builder.finish(outputs=[y])
        assert graph.tensor_type(y).shape == (1, 8, 32, 32)

    def test_duplicate_input_rejected(self):
        builder = GraphBuilder("g")
        builder.input("x", (1,))
        with pytest.raises(GraphError):
            builder.input("x", (1,))

    def test_conv_weights_registered_as_initializers(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 3, 8, 8))
        builder.conv2d(x, 4, 3, name="c")
        assert "c.w" in builder.graph.initializers
        assert "c.b" in builder.graph.initializers
        assert builder.graph.tensor_type("c.w").shape == (4, 3, 3, 3)

    def test_bias_optional(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 3, 8, 8))
        builder.conv2d(x, 4, 3, bias=False, name="c")
        assert "c.b" not in builder.graph.initializers

    def test_grouped_conv_weight_shape(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 8, 8, 8))
        builder.conv2d(x, 16, 3, groups=4, name="c")
        assert builder.graph.tensor_type("c.w").shape == (16, 2, 3, 3)

    def test_auto_naming_is_unique(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (4,))
        a = builder.relu(x)
        b = builder.relu(a)
        assert a != b

    def test_unknown_sugar_raises_attribute_error(self):
        builder = GraphBuilder("g")
        with pytest.raises(AttributeError):
            builder.made_up_op("x")

    def test_dtype_propagates(self):
        builder = GraphBuilder("g", dtype=DType.FP16)
        x = builder.input("x", (4,))
        assert builder.graph.tensor_type(x).dtype is DType.FP16

    def test_mha_output_shape(self):
        builder = GraphBuilder("g")
        tokens = builder.input("t", (2, 16, 64))
        out = builder.multi_head_attention(tokens, heads=4)
        assert builder.graph.tensor_type(out).shape == (2, 16, 64)

    def test_mha_contains_softmax_and_matmuls(self):
        builder = GraphBuilder("g")
        tokens = builder.input("t", (1, 8, 32))
        builder.multi_head_attention(tokens, heads=2)
        ops = [node.op_type for node in builder.graph.nodes]
        assert ops.count("matmul") == 2
        assert ops.count("softmax") == 1
        assert ops.count("dense") == 4  # q, k, v, out projections

    def test_finish_validates(self):
        builder = GraphBuilder("g")
        builder.input("x", (4,))
        with pytest.raises(GraphError):
            builder.finish(outputs=["nonexistent"])


class TestShapeInference:
    def test_infer_fills_all_intermediates(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 3, 16, 16))
        y = builder.conv2d(x, 8, 3, pad=1)
        y = builder.batch_norm(y)
        y = builder.relu(y)
        graph = builder.finish([y])
        for node in graph.nodes:
            for output in node.outputs:
                assert output in graph.tensor_types

    def test_reinference_is_stable(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (2, 4))
        y = builder.dense(x, 8)
        graph = builder.finish([y])
        before = dict(graph.tensor_types)
        infer_shapes(graph)
        assert graph.tensor_types == before


class TestDynamicShapes:
    def _symbolic_graph(self):
        builder = GraphBuilder("dyn")
        x = builder.input("x", ("batch", 3, "size", "size"))
        y = builder.conv2d(x, 8, 3, pad=1)
        y = builder.relu(y)
        return builder.finish([y]), y

    def test_symbols_flow_through(self):
        graph, y = self._symbolic_graph()
        assert graph.tensor_type(y).shape == ("batch", 8, "size", "size")

    def test_dynamic_symbols_discovered(self):
        graph, _ = self._symbolic_graph()
        assert dynamic_symbols(graph) == {"batch", "size"}

    def test_bind_specializes(self):
        graph, y = self._symbolic_graph()
        bound = bind_shapes(graph, batch=4, size=64)
        assert bound.tensor_type(y).shape == (4, 8, 64, 64)
        assert dynamic_symbols(bound) == set()

    def test_bind_leaves_original_untouched(self):
        graph, y = self._symbolic_graph()
        bind_shapes(graph, batch=4, size=64)
        assert graph.tensor_type(y).shape == ("batch", 8, "size", "size")

    def test_two_bindings_from_one_graph(self):
        """§V-B dynamic tensors: one build, many shapes."""
        graph, y = self._symbolic_graph()
        small = bind_shapes(graph, batch=1, size=32)
        large = bind_shapes(graph, batch=8, size=128)
        assert small.tensor_type(y).shape == (1, 8, 32, 32)
        assert large.tensor_type(y).shape == (8, 8, 128, 128)
