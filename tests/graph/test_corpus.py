"""Regression corpus replay: every checked-in malformed graph must raise
its recorded typed error with node/tensor provenance in the message."""

import json
from pathlib import Path

import pytest

from repro.graph.fuzz import MUTATIONS, classify_error, _graph_from_document

CORPUS = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS.glob("*.json"))

#: Exception type names that count as "typed" for the corpus contract.
TYPED_NAMES = {
    "GraphValidationError", "GraphCycleError", "UndefinedTensorError",
    "DuplicateProducerError", "DuplicateNodeError", "UnproducedOutputError",
    "UntypedTensorError", "TensorRefError", "SignatureError",
    "CompileError", "LoweringError", "TilingError", "TensorizeError",
    "CodegenError", "OpError", "GraphError", "FormatVersionError",
}


def test_corpus_covers_every_mutation():
    assert {path.stem for path in ENTRIES} == set(MUTATIONS)


@pytest.mark.parametrize(
    "path", ENTRIES, ids=[path.stem for path in ENTRIES]
)
def test_corpus_entry_raises_recorded_error(path):
    entry = json.loads(path.read_text())
    graph = _graph_from_document(entry["document"])
    observed = classify_error(graph)
    assert observed is not None, "corpus graph compiled without error"
    error_type, message = observed
    assert error_type == entry["error_type"]
    assert error_type in TYPED_NAMES, (
        f"untyped {error_type} escaped the pipeline: {message}"
    )
    assert entry["provenance"] in message, (
        f"provenance {entry['provenance']!r} missing from: {message}"
    )
