"""Fusion equivalence guard: honest fusions pass, doctored fused kernels
trigger auto-fallback bit-identical to compiling with fusion disabled."""

import warnings

import numpy as np
import pytest

from repro.compiler.pipeline import compile_graph
from repro.core.config import dtu2_config
from repro.core.datatypes import DType
from repro.graph.builder import GraphBuilder
from repro.graph.equivalence import verify_fused_graph
from repro.graph.passes import optimize
from repro.graph.reference import ReferenceExecutor
from repro.obs import Observability


def _cnn():
    builder = GraphBuilder("guarded")
    data = builder.input("x", (1, 3, 8, 8))
    out = builder.conv2d(data, 8, kernel=3, pad=1, name="conv0")
    out = builder.batch_norm(out, name="bn0")
    out = builder.relu(out, name="act0")
    out = builder.dense(builder.flatten(out), 10, name="head")
    return builder.finish(outputs=[out])


@pytest.fixture
def doctored_fused_op(monkeypatch):
    """Make every fused group mis-compute: a compiler bug in effigy."""

    def _wrong(self, node, operands):
        scratch = dict(zip(node.inputs, operands))
        from repro.graph.fusion import fused_members

        for member in fused_members(node):
            self._evaluate(member, scratch)
        return tuple(scratch[name] * 1.5 + 0.25 for name in node.outputs)

    monkeypatch.setattr(ReferenceExecutor, "_op_fused", _wrong)


class TestGuardHonest:
    def test_real_fusions_verify_ok(self):
        optimized, _report = optimize(_cnn(), fusion=True)
        assert any(node.op_type == "fused" for node in optimized.nodes)
        report = verify_fused_graph(optimized, seed=0)
        assert report.ok
        assert report.checks
        assert all(check.result == "ok" for check in report.checks)
        assert all(check.max_abs_error == 0.0 for check in report.checks)

    def test_counters_on_ok(self):
        obs = Observability()
        optimized, _report = optimize(_cnn(), fusion=True)
        report = verify_fused_graph(optimized, seed=0, obs=obs)
        counter = obs.metrics.get("fusion_guard_checks_total")
        assert counter.value(result="ok") == len(report.checks)

    def test_compile_with_guard_keeps_fusion(self):
        result = compile_graph(
            _cnn(), dtu2_config(), dtype=DType.FP16, verify_fusion=True
        )
        assert result.guard is not None and result.guard.ok
        assert not result.fell_back
        assert result.model.fusion_groups > 0

    def test_symbolic_groups_skip_not_fail(self):
        builder = GraphBuilder("sym")
        data = builder.input("x", ("batch", 8))
        out = builder.dense(data, 8, name="fc0")
        out = builder.relu(out, name="act0")
        graph = builder.finish(outputs=[out])
        optimized, _report = optimize(graph, fusion=True)
        report = verify_fused_graph(optimized, seed=0)
        assert report.ok
        assert all(check.result == "skipped" for check in report.checks)


class TestGuardFallback:
    def test_mismatch_detected(self, doctored_fused_op):
        optimized, _report = optimize(_cnn(), fusion=True)
        report = verify_fused_graph(optimized, seed=0)
        assert not report.ok
        assert report.mismatches

    def test_fallback_bit_identical_to_fusion_disabled(
        self, doctored_fused_op
    ):
        chip = dtu2_config()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            guarded = compile_graph(
                _cnn(), chip, dtype=DType.FP16, fusion=True,
                verify_fusion=True,
            )
        unfused = compile_graph(_cnn(), chip, dtype=DType.FP16, fusion=False)
        assert guarded.fell_back
        assert guarded.fusion is False
        assert guarded.model.fusion_groups == 0
        assert len(guarded.model.kernels) == len(unfused.model.kernels)
        for got, want in zip(guarded.model.kernels, unfused.model.kernels):
            assert got.name == want.name
            assert got.cost == want.cost
            assert got.code_bytes == want.code_bytes

    def test_fallback_warns_and_counts(self, doctored_fused_op):
        obs = Observability()
        with pytest.warns(RuntimeWarning, match="fusion equivalence guard"):
            result = compile_graph(
                _cnn(), dtu2_config(), dtype=DType.FP16, fusion=True,
                verify_fusion=True, obs=obs,
            )
        assert result.fell_back
        checks = obs.metrics.get("fusion_guard_checks_total")
        assert checks.value(result="mismatch") >= 1
        fallbacks = obs.metrics.get("fusion_guard_fallbacks_total")
        assert fallbacks.total() >= 1

    def test_device_compile_knob(self, doctored_fused_op):
        from repro.runtime.runtime import Device

        obs = Observability()
        device = Device.open("i20", obs=obs)
        with pytest.warns(RuntimeWarning, match="fusion equivalence guard"):
            compiled = device.compile(
                _cnn(), verify_fusion=True, cache=False
            )
        assert compiled.fusion_groups == 0
        assert (
            obs.metrics.get("fusion_guard_fallbacks_total").total() >= 1
        )

    def test_cache_keys_separate_verified_compiles(self, doctored_fused_op):
        from repro.caching import CompileCache
        from repro.runtime.runtime import Device

        device = Device.open("i20")
        cache = CompileCache()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            verified = device.compile(
                _cnn(), verify_fusion=True, cache=cache
            )
        plain = device.compile(_cnn(), cache=cache)
        assert verified.fusion_groups == 0  # guard fell back
        assert plain.fusion_groups > 0  # unverified entry is distinct
        assert len(cache) == 2


class TestStrictNumerics:
    """Satellite: NaN/Inf guard on reference-executor op outputs."""

    def _overflowing_graph(self):
        # float64 overflow: squaring 1e200 yields inf.
        builder = GraphBuilder("overflow")
        data = builder.input("x", (2, 4))
        out = builder.mul(data, data, name="boom")
        out = builder.relu(out, name="act")
        return builder.finish(outputs=[out])

    def test_overflow_trips_guard(self):
        from repro.graph.reference import NumericsError

        graph = self._overflowing_graph()
        executor = ReferenceExecutor(graph, strict_numerics=True)
        with pytest.raises(NumericsError) as excinfo, np.errstate(over="ignore"):
            executor.run(x=np.full((2, 4), 1e200))
        assert excinfo.value.node == "boom"

    def test_counter_increments(self):
        from repro.graph.reference import NumericsError

        obs = Observability()
        graph = self._overflowing_graph()
        executor = ReferenceExecutor(graph, strict_numerics=True, obs=obs)
        with pytest.raises(NumericsError), np.errstate(over="ignore"):
            executor.run(x=np.full((2, 4), 1e200))
        counter = obs.metrics.get("reference_numeric_guard_trips_total")
        assert counter.total() == 1

    def test_finite_run_passes(self):
        graph = self._overflowing_graph()
        executor = ReferenceExecutor(graph, strict_numerics=True)
        outputs = executor.run(x=np.zeros((2, 4)))
        assert np.all(np.isfinite(outputs["act.out"]))

    def test_guard_off_by_default(self):
        graph = self._overflowing_graph()
        with np.errstate(over="ignore"):
            outputs = ReferenceExecutor(graph).run(x=np.full((2, 4), 1e200))
        assert np.all(np.isinf(outputs["act.out"]))
