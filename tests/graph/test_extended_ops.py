"""Tests for the extended operator set (prelu / clip / reduce_max / split)."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.ir import Node, TensorType
from repro.graph.ops import OpError, infer_node
from repro.graph.reference import ReferenceExecutor


class TestShapeInference:
    def test_prelu_preserves_shape(self):
        node = Node("p", "prelu", ["x", "s"], ["y"])
        out = infer_node(node, [TensorType((2, 8, 4, 4)), TensorType((8,))])
        assert out[0].shape == (2, 8, 4, 4)

    def test_prelu_channel_mismatch(self):
        node = Node("p", "prelu", ["x", "s"], ["y"])
        with pytest.raises(OpError):
            infer_node(node, [TensorType((2, 8, 4, 4)), TensorType((4,))])

    def test_clip_requires_max(self):
        with pytest.raises(OpError):
            infer_node(Node("c", "clip", ["x"], ["y"]), [TensorType((4,))])

    def test_clip_range_validated(self):
        node = Node("c", "clip", ["x"], ["y"], {"min": 5.0, "max": 1.0})
        with pytest.raises(OpError):
            infer_node(node, [TensorType((4,))])

    def test_reduce_max_shape(self):
        node = Node("r", "reduce_max", ["x"], ["y"], {"axes": [1]})
        out = infer_node(node, [TensorType((2, 8, 4))])
        assert out[0].shape == (2, 4)

    def test_split_shapes(self):
        node = Node(
            "s", "split", ["x"], ["a", "b", "c"],
            {"axis": 1, "sections": [2, 3, 3]},
        )
        out = infer_node(node, [TensorType((4, 8))])
        assert [t.shape for t in out] == [(4, 2), (4, 3), (4, 3)]

    def test_split_sections_must_sum(self):
        node = Node("s", "split", ["x"], ["a", "b"], {"axis": 1, "sections": [2, 3]})
        with pytest.raises(OpError):
            infer_node(node, [TensorType((4, 8))])


class TestReferenceSemantics:
    def test_prelu_channelwise(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 2, 3))
        y = builder.prelu(x, name="p")
        graph = builder.finish([y])
        executor = ReferenceExecutor(graph)
        executor.set_weight("p.slope", np.array([0.1, 0.5]))
        data = np.full((1, 2, 3), -2.0)
        out = executor.run(x=data)[y]
        assert np.allclose(out[0, 0], -0.2)
        assert np.allclose(out[0, 1], -1.0)

    def test_prelu_positive_passthrough(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 4, 2))
        y = builder.prelu(x)
        graph = builder.finish([y])
        data = np.abs(np.random.default_rng(0).normal(size=(1, 4, 2)))
        out = ReferenceExecutor(graph).run(x=data)[y]
        assert np.allclose(out, data)

    def test_clip_relu6(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (5,))
        y = builder.clip(x, 0.0, 6.0)
        graph = builder.finish([y])
        data = np.array([-3.0, 0.0, 3.0, 6.0, 9.0])
        out = ReferenceExecutor(graph).run(x=data)[y]
        assert out.tolist() == [0.0, 0.0, 3.0, 6.0, 6.0]

    def test_reduce_max(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (2, 4))
        y = builder.node("reduce_max", [x], attrs={"axes": [1]})
        graph = builder.finish([y])
        data = np.array([[1.0, 9.0, 2.0, 3.0], [4.0, 0.0, 8.0, 1.0]])
        out = ReferenceExecutor(graph).run(x=data)[y]
        assert out.tolist() == [9.0, 8.0]

    def test_split_partitions(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (2, 6))
        a, b = builder.split(x, [2, 4], axis=1)
        graph = builder.finish([a, b])
        data = np.arange(12.0).reshape(2, 6)
        out = ReferenceExecutor(graph).run(x=data)
        assert np.array_equal(out[a], data[:, :2])
        assert np.array_equal(out[b], data[:, 2:])

    def test_split_then_concat_is_identity(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (3, 9))
        parts = builder.split(x, [3, 3, 3], axis=1)
        y = builder.concat(list(parts), axis=1)
        graph = builder.finish([y])
        data = np.random.default_rng(1).normal(size=(3, 9))
        out = ReferenceExecutor(graph).run(x=data)[y]
        assert np.array_equal(out, data)


def test_extended_ops_compile_and_simulate():
    builder = GraphBuilder("mobile_block")
    x = builder.input("x", (1, 16, 32, 32))
    y = builder.conv2d(x, 32, 3, pad=1)
    y = builder.clip(y, 0.0, 6.0)  # relu6, the mobile-net staple
    y = builder.conv2d(y, 32, 3, pad=1, groups=32)  # depthwise
    y = builder.prelu(y)
    graph = builder.finish([y])

    from repro.runtime.runtime import Device

    device = Device.open("i20")
    result = device.launch(device.compile(graph))
    assert result.latency_ns > 0
