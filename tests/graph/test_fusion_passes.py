"""Unit tests for operator fusion and the pass pipeline (§V-B)."""


from repro.graph.builder import GraphBuilder
from repro.graph.fusion import FUSABLE_EPILOGUES, MAX_FUSION_LENGTH, fuse_operators, fused_members
from repro.graph.passes import dead_code_elimination, eliminate_identities, optimize
from repro.graph.shape_inference import bind_shapes


def _conv_bn_relu_graph():
    builder = GraphBuilder("g")
    x = builder.input("x", (1, 3, 32, 32))
    y = builder.conv2d(x, 8, 3, pad=1)
    y = builder.batch_norm(y)
    y = builder.relu(y)
    return builder.finish([y])


class TestEpilogueFusion:
    def test_conv_bn_relu_becomes_one_kernel(self):
        graph = _conv_bn_relu_graph()
        report = fuse_operators(graph)
        assert report.groups == 1
        assert report.nodes_fused == 3
        assert len(graph.nodes) == 1
        assert graph.nodes[0].op_type == "fused"
        assert graph.nodes[0].attrs["anchor"] == "conv2d"

    def test_fused_graph_still_validates(self):
        graph = _conv_bn_relu_graph()
        fuse_operators(graph)
        graph.validate()

    def test_internal_tensors_recorded(self):
        graph = _conv_bn_relu_graph()
        fuse_operators(graph)
        internal = graph.nodes[0].attrs["internal_tensors"]
        assert len(internal) == 2  # conv out + bn out no longer materialize

    def test_members_reconstructible(self):
        graph = _conv_bn_relu_graph()
        fuse_operators(graph)
        members = fused_members(graph.nodes[0])
        assert [member.op_type for member in members] == [
            "conv2d", "batch_norm", "relu",
        ]

    def test_disabled_fusion_is_identity(self):
        graph = _conv_bn_relu_graph()
        report = fuse_operators(graph, enable=False)
        assert report.groups == 0
        assert len(graph.nodes) == 3

    def test_multi_consumer_blocks_fusion(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 3, 8, 8))
        conv = builder.conv2d(x, 4, 3, pad=1)
        a = builder.relu(conv)
        b = builder.sigmoid(conv)  # second consumer of conv output
        graph = builder.finish([a, b])
        fuse_operators(graph)
        anchors = [node for node in graph.nodes if node.op_type == "fused"]
        # conv cannot absorb either activation; at most eltwise chains fuse
        assert all(node.attrs["anchor"] != "conv2d" for node in anchors)

    def test_graph_output_not_fused_past(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 3, 8, 8))
        conv = builder.conv2d(x, 4, 3, pad=1)
        act = builder.relu(conv)
        graph = builder.finish([conv, act])  # conv output is a graph output
        fuse_operators(graph)
        graph.validate()
        assert any(node.op_type == "conv2d" for node in graph.nodes)

    def test_fusion_length_capped(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (64,))
        y = builder.dense(x, 64)
        for _ in range(2 * MAX_FUSION_LENGTH):
            y = builder.relu(y)
        graph = builder.finish([y])
        fuse_operators(graph)
        for node in graph.nodes:
            assert len(fused_members(node)) <= MAX_FUSION_LENGTH

    def test_elementwise_chains_fuse_without_anchor(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (64,))
        y = builder.relu(x)
        y = builder.sigmoid(y)
        y = builder.tanh(y)
        graph = builder.finish([y])
        report = fuse_operators(graph)
        assert report.groups == 1 and len(graph.nodes) == 1


class TestAttentionFusion:
    def test_mha_pattern_fuses(self):
        builder = GraphBuilder("g")
        tokens = builder.input("t", (1, 16, 64))
        out = builder.multi_head_attention(tokens, heads=4)
        graph = builder.finish([out])
        fuse_operators(graph)
        attention = [
            node for node in graph.nodes if node.attrs.get("pattern") == "attention"
        ]
        assert len(attention) == 1
        assert [member.op_type for member in fused_members(attention[0])] == [
            "matmul", "mul", "softmax", "matmul",
        ]
        graph.validate()

    def test_bert_layer_fuses_24_attention_blocks(self):
        from repro.models import build

        graph = bind_shapes(build("bert_large"), batch=1)
        fuse_operators(graph)
        attention = [
            node for node in graph.nodes if node.attrs.get("pattern") == "attention"
        ]
        assert len(attention) == 24


class TestPasses:
    def test_identity_elimination_rewires(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (4,))
        y = builder.identity(x)
        z = builder.relu(y)
        graph = builder.finish([z])
        eliminate_identities(graph)
        assert all(node.op_type != "identity" for node in graph.nodes)
        graph.validate()

    def test_identity_as_output_rewires_output(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (4,))
        y = builder.relu(x)
        z = builder.identity(y)
        graph = builder.finish([z])
        eliminate_identities(graph)
        graph.validate()
        assert graph.outputs == [y]

    def test_dce_removes_unused_branch(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (4,))
        keep = builder.relu(x)
        builder.sigmoid(x)  # dead
        graph = builder.finish([keep])
        dead_code_elimination(graph)
        assert len(graph.nodes) == 1

    def test_optimize_pipeline_returns_report(self):
        graph = _conv_bn_relu_graph()
        optimized, report = optimize(graph)
        assert report.groups >= 1
        assert report.nodes_after < report.nodes_before
        optimized.validate()

    def test_fusable_epilogues_are_cheap_categories(self):
        assert "conv" not in FUSABLE_EPILOGUES
        assert "gemm" not in FUSABLE_EPILOGUES
