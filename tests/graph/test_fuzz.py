"""Differential graph fuzzer: determinism, invariant enforcement, and the
delta-debugging minimizer."""

import pytest

from repro.graph.fuzz import (
    FAMILIES,
    MUTATIONS,
    check_malformed_graph,
    check_valid_graph,
    generate_graph,
    minimize_failure,
    mutate_graph,
    run_fuzz,
)
from repro.graph.ir import GraphError
from repro.seeding import derive_rng


class TestGenerator:
    def test_generated_graphs_are_valid(self):
        for index in range(12):
            _family, graph = generate_graph(seed=0, index=index)
            graph.validate(signatures=True)

    def test_generation_is_deterministic(self):
        for index in range(6):
            _f1, first = generate_graph(seed=3, index=index)
            _f2, second = generate_graph(seed=3, index=index)
            assert first.structural_hash() == second.structural_hash()

    def test_different_seeds_differ(self):
        hashes = {
            generate_graph(seed=seed, index=0)[1].structural_hash()
            for seed in range(6)
        }
        assert len(hashes) > 1

    def test_every_family_buildable(self):
        for name, family in FAMILIES.items():
            rng = derive_rng(0, "family-smoke", name)
            graph = family(rng, 0)
            graph.validate(signatures=True)


class TestMutator:
    def test_every_mutation_yields_typed_error(self):
        """Each mutation kind, applied to a graph it fits, must be caught
        typed with the corrupted node/tensor named in the message."""
        exercised = set()
        for index in range(60):
            _family, graph = generate_graph(seed=0, index=index)
            mutated = mutate_graph(graph, seed=0, index=index)
            assert mutated is not None
            mutation, mutant, provenance = mutated
            violation = check_malformed_graph(mutant, provenance)
            assert violation is None, f"{mutation}: {violation}"
            exercised.add(mutation)
        assert exercised == set(MUTATIONS)

    def test_mutation_leaves_original_untouched(self):
        _family, graph = generate_graph(seed=0, index=0)
        digest = graph.structural_hash()
        mutate_graph(graph, seed=0, index=0)
        assert graph.structural_hash() == digest

    def test_valid_side_passes(self):
        for index in range(10):
            _family, graph = generate_graph(seed=0, index=index)
            assert check_valid_graph(graph, seed=0, index=index) is None


class TestCampaign:
    def test_campaign_passes(self):
        report = run_fuzz(seed=0, budget=30)
        assert report.ok
        assert len(report.cases) == 30

    def test_same_seed_byte_identical(self):
        first = run_fuzz(seed=7, budget=15)
        second = run_fuzz(seed=7, budget=15)
        assert first.to_json() == second.to_json()

    def test_report_shape(self):
        report = run_fuzz(seed=0, budget=10)
        data = report.to_dict()
        assert data["ok"] is True
        assert data["violation_count"] == 0
        assert sum(data["families"].values()) == 10
        assert "PASS" in report.render()


class TestMinimizer:
    def test_minimizer_shrinks_and_preserves_signature(self):
        from repro.graph.fuzz import classify_error

        rng = derive_rng(0, "minimize-test")
        graph = FAMILIES["cnn"](rng, 0)
        provenance = MUTATIONS["undefined-input"](graph, rng)
        before = classify_error(graph)
        assert before is not None
        minimized = minimize_failure(graph, provenance)
        after = classify_error(minimized)
        assert after is not None
        assert after[0] == before[0]
        assert str(provenance) in after[1]
        assert len(minimized.nodes) <= len(graph.nodes)

    def test_minimized_graph_still_fails_typed(self):
        rng = derive_rng(0, "minimize-typed")
        graph = FAMILIES["mlp"](rng, 0)
        provenance = MUTATIONS["cycle"](graph, rng)
        minimized = minimize_failure(graph, provenance)
        with pytest.raises(GraphError):
            from repro.compiler.pipeline import compile_graph
            from repro.core.config import dtu2_config

            compile_graph(minimized, dtu2_config())
