"""Unit tests for the graph IR."""

import pytest

from repro.core.datatypes import DType
from repro.graph.ir import Graph, GraphError, Node, TensorType


class TestTensorType:
    def test_static_properties(self):
        tensor_type = TensorType((2, 3, 4), DType.FP16)
        assert tensor_type.is_static
        assert tensor_type.rank == 3
        assert tensor_type.num_elements() == 24
        assert tensor_type.nbytes() == 48

    def test_symbolic_dims(self):
        tensor_type = TensorType(("batch", 3, 224, 224))
        assert not tensor_type.is_static
        with pytest.raises(GraphError):
            tensor_type.num_elements()

    def test_bind_substitutes(self):
        tensor_type = TensorType(("batch", "seq", 64))
        bound = tensor_type.bind({"batch": 2, "seq": 128})
        assert bound.shape == (2, 128, 64)

    def test_bind_partial_leaves_symbols(self):
        tensor_type = TensorType(("batch", "seq"))
        bound = tensor_type.bind({"batch": 2})
        assert bound.shape == (2, "seq")

    def test_negative_dim_rejected(self):
        with pytest.raises(GraphError):
            TensorType((2, -1))

    def test_empty_symbol_rejected(self):
        with pytest.raises(GraphError):
            TensorType(("", 2))


class TestNode:
    def test_requires_name_and_outputs(self):
        with pytest.raises(GraphError):
            Node(name="", op_type="relu", inputs=["x"], outputs=["y"])
        with pytest.raises(GraphError):
            Node(name="n", op_type="relu", inputs=["x"], outputs=[])

    def test_attr_default(self):
        node = Node(name="n", op_type="conv2d", inputs=[], outputs=["y"],
                    attrs={"stride": 2})
        assert node.attr("stride") == 2
        assert node.attr("pad", 0) == 0


def _diamond_graph():
    """x -> a -> (b, c) -> d"""
    graph = Graph(name="diamond", inputs=["x"], outputs=["d.out"])
    graph.tensor_types["x"] = TensorType((4,))
    graph.nodes = [
        Node("a", "relu", ["x"], ["a.out"]),
        Node("b", "relu", ["a.out"], ["b.out"]),
        Node("c", "relu", ["a.out"], ["c.out"]),
        Node("d", "add", ["b.out", "c.out"], ["d.out"]),
    ]
    return graph


class TestGraphStructure:
    def test_producers_and_consumers(self):
        graph = _diamond_graph()
        assert graph.producers()["a.out"].name == "a"
        assert {node.name for node in graph.consumers()["a.out"]} == {"b", "c"}

    def test_duplicate_producer_rejected(self):
        graph = _diamond_graph()
        graph.nodes.append(Node("dup", "relu", ["x"], ["a.out"]))
        with pytest.raises(GraphError):
            graph.producers()

    def test_topological_order_respects_edges(self):
        graph = _diamond_graph()
        order = [node.name for node in graph.topological_nodes()]
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")
        assert order.index("d") == 3

    def test_cycle_detected(self):
        graph = _diamond_graph()
        graph.nodes.append(Node("evil", "add", ["d.out", "x"], ["evil.out"]))
        graph.nodes[0].inputs = ["evil.out"]
        graph.inputs = []
        graph.tensor_types = {}
        with pytest.raises(GraphError):
            graph.topological_nodes()

    def test_validate_catches_undefined_input(self):
        graph = _diamond_graph()
        graph.nodes[0].inputs = ["ghost"]
        with pytest.raises(GraphError):
            graph.validate()

    def test_validate_catches_unproduced_output(self):
        graph = _diamond_graph()
        graph.outputs = ["missing"]
        with pytest.raises(GraphError):
            graph.validate()

    def test_validate_requires_input_types(self):
        graph = _diamond_graph()
        graph.tensor_types = {}
        with pytest.raises(GraphError):
            graph.validate()

    def test_node_by_name(self):
        graph = _diamond_graph()
        assert graph.node_by_name("c").op_type == "relu"
        with pytest.raises(GraphError):
            graph.node_by_name("zzz")

    def test_networkx_export(self):
        digraph = _diamond_graph().to_networkx()
        assert digraph.number_of_nodes() == 4
        assert digraph.number_of_edges() == 4


class TestGraphBind:
    def test_bind_copies(self):
        graph = _diamond_graph()
        graph.tensor_types["x"] = TensorType(("batch",))
        bound = graph.bind({"batch": 7})
        assert bound.tensor_types["x"].shape == (7,)
        assert graph.tensor_types["x"].shape == ("batch",)

    def test_bind_rewrites_shape_attrs(self):
        graph = _diamond_graph()
        graph.nodes[0].attrs["shape"] = ("batch", 4)
        bound = graph.bind({"batch": 2})
        assert bound.nodes[0].attrs["shape"] == (2, 4)

    def test_weight_bytes_counts_initializers(self):
        graph = _diamond_graph()
        graph.initializers = {"w"}
        graph.tensor_types["w"] = TensorType((10, 10), DType.FP32)
        assert graph.weight_bytes() == 400
