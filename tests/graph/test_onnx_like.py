"""Unit tests for the ONNX-like serialization format."""

import pytest

from repro.core.datatypes import DType
from repro.graph.builder import GraphBuilder
from repro.graph.ir import GraphError
from repro.graph.onnx_like import export_graph, import_graph, load, save


def _sample_graph():
    builder = GraphBuilder("sample", dtype=DType.FP16)
    x = builder.input("x", ("batch", 3, 32, 32))
    y = builder.conv2d(x, 8, 3, pad=1)
    y = builder.relu(y)
    y = builder.reshape(y, ("batch", -1))
    return builder.finish([y])


def test_roundtrip_preserves_structure():
    graph = _sample_graph()
    restored = import_graph(export_graph(graph))
    assert restored.name == graph.name
    assert restored.inputs == graph.inputs
    assert restored.outputs == graph.outputs
    assert restored.initializers == graph.initializers
    assert len(restored.nodes) == len(graph.nodes)


def test_roundtrip_preserves_types_and_symbols():
    graph = _sample_graph()
    restored = import_graph(export_graph(graph))
    assert restored.tensor_type("x").shape == ("batch", 3, 32, 32)
    assert restored.tensor_type("x").dtype is DType.FP16


def test_roundtrip_preserves_tuple_attrs():
    graph = _sample_graph()
    restored = import_graph(export_graph(graph))
    reshape = [node for node in restored.nodes if node.op_type == "reshape"][0]
    assert reshape.attrs["shape"] == ("batch", -1)


def test_document_is_json_compatible():
    import json

    document = export_graph(_sample_graph())
    json.dumps(document)  # must not raise


def test_wrong_version_rejected():
    document = export_graph(_sample_graph())
    document["format_version"] = 99
    with pytest.raises(GraphError):
        import_graph(document)


def test_import_validates_structure():
    document = export_graph(_sample_graph())
    document["nodes"][0]["inputs"] = ["undefined_tensor"]
    with pytest.raises(GraphError):
        import_graph(document)


def test_save_load_roundtrip(tmp_path):
    graph = _sample_graph()
    path = tmp_path / "model.json"
    save(graph, path)
    restored = load(path)
    assert restored.name == graph.name
    assert len(restored.nodes) == len(graph.nodes)


def test_imported_graph_compiles(tmp_path):
    """The paper's flow: import ONNX-like model -> optimize -> lower."""
    from repro.compiler.lowering import lower_graph
    from repro.core.config import dtu2_config
    from repro.graph.passes import optimize
    from repro.graph.shape_inference import bind_shapes

    path = tmp_path / "model.json"
    save(_sample_graph(), path)
    graph = load(path)
    bound = bind_shapes(graph, batch=2)
    optimized, _ = optimize(bound)
    compiled = lower_graph(optimized, dtu2_config())
    assert compiled.total_flops > 0
