"""Unit tests for the ONNX-like serialization format."""

import pytest

from repro.core.datatypes import DType
from repro.graph.builder import GraphBuilder
from repro.graph.ir import GraphError
from repro.graph.onnx_like import export_graph, import_graph, load, save


def _sample_graph():
    builder = GraphBuilder("sample", dtype=DType.FP16)
    x = builder.input("x", ("batch", 3, 32, 32))
    y = builder.conv2d(x, 8, 3, pad=1)
    y = builder.relu(y)
    y = builder.reshape(y, ("batch", -1))
    return builder.finish([y])


def test_roundtrip_preserves_structure():
    graph = _sample_graph()
    restored = import_graph(export_graph(graph))
    assert restored.name == graph.name
    assert restored.inputs == graph.inputs
    assert restored.outputs == graph.outputs
    assert restored.initializers == graph.initializers
    assert len(restored.nodes) == len(graph.nodes)


def test_roundtrip_preserves_types_and_symbols():
    graph = _sample_graph()
    restored = import_graph(export_graph(graph))
    assert restored.tensor_type("x").shape == ("batch", 3, 32, 32)
    assert restored.tensor_type("x").dtype is DType.FP16


def test_roundtrip_preserves_tuple_attrs():
    graph = _sample_graph()
    restored = import_graph(export_graph(graph))
    reshape = [node for node in restored.nodes if node.op_type == "reshape"][0]
    assert reshape.attrs["shape"] == ("batch", -1)


def test_document_is_json_compatible():
    import json

    document = export_graph(_sample_graph())
    json.dumps(document)  # must not raise


def test_wrong_version_rejected():
    document = export_graph(_sample_graph())
    document["format_version"] = 99
    with pytest.raises(GraphError):
        import_graph(document)


def test_import_validates_structure():
    document = export_graph(_sample_graph())
    document["nodes"][0]["inputs"] = ["undefined_tensor"]
    with pytest.raises(GraphError):
        import_graph(document)


def test_save_load_roundtrip(tmp_path):
    graph = _sample_graph()
    path = tmp_path / "model.json"
    save(graph, path)
    restored = load(path)
    assert restored.name == graph.name
    assert len(restored.nodes) == len(graph.nodes)


def test_imported_graph_compiles(tmp_path):
    """The paper's flow: import ONNX-like model -> optimize -> lower."""
    from repro.compiler.lowering import lower_graph
    from repro.core.config import dtu2_config
    from repro.graph.passes import optimize
    from repro.graph.shape_inference import bind_shapes

    path = tmp_path / "model.json"
    save(_sample_graph(), path)
    graph = load(path)
    bound = bind_shapes(graph, batch=2)
    optimized, _ = optimize(bound)
    compiled = lower_graph(optimized, dtu2_config())
    assert compiled.total_flops > 0


# -- hardened import (typed rejections + seeded round-trip property) --------


def test_unknown_version_raises_named_error():
    from repro.graph.onnx_like import FormatVersionError

    document = export_graph(_sample_graph())
    document["format_version"] = 99
    with pytest.raises(FormatVersionError) as excinfo:
        import_graph(document)
    assert "99" in str(excinfo.value)


def test_missing_version_raises_named_error():
    from repro.graph.onnx_like import FormatVersionError

    document = export_graph(_sample_graph())
    del document["format_version"]
    with pytest.raises(FormatVersionError):
        import_graph(document)


def test_duplicate_node_names_rejected():
    from repro.graph.ir import DuplicateNodeError

    document = export_graph(_sample_graph())
    document["nodes"][1]["name"] = document["nodes"][0]["name"]
    with pytest.raises(DuplicateNodeError) as excinfo:
        import_graph(document)
    assert document["nodes"][0]["name"] in str(excinfo.value)


def test_nonstring_tensor_ref_rejected():
    from repro.graph.ir import TensorRefError

    document = export_graph(_sample_graph())
    document["nodes"][0]["inputs"][0] = 123
    with pytest.raises(TensorRefError) as excinfo:
        import_graph(document)
    assert "123" in str(excinfo.value)


def test_import_runs_signature_checks():
    from repro.graph.ir import SignatureError

    document = export_graph(_sample_graph())
    document["nodes"][0]["attrs"]["stride"] = 0
    with pytest.raises(SignatureError) as excinfo:
        import_graph(document)
    assert document["nodes"][0]["name"] in str(excinfo.value)


def test_seeded_roundtrip_structural_hash_property():
    """Property test over the fuzzer's generator: export -> import keeps
    structural_hash for a spread of seeded random graphs."""
    from repro.graph.fuzz import generate_graph

    for index in range(20):
        _family, graph = generate_graph(seed=11, index=index)
        restored = import_graph(export_graph(graph))
        assert restored.structural_hash() == graph.structural_hash()


def test_roundtrip_hash_stable_on_disk(tmp_path):
    from repro.graph.fuzz import generate_graph

    _family, graph = generate_graph(seed=5, index=0)
    path = tmp_path / "fuzzed.json"
    save(graph, path)
    assert load(path).structural_hash() == graph.structural_hash()
