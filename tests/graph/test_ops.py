"""Unit tests for operator shape inference and FLOP counting."""

import pytest

from repro.graph.ir import Node, TensorType
from repro.graph.ops import OpError, infer_node, node_flops, spec


def _node(op_type, attrs=None, inputs=1, outputs=1):
    return Node(
        name="n",
        op_type=op_type,
        inputs=[f"in{i}" for i in range(inputs)],
        outputs=[f"out{i}" for i in range(outputs)],
        attrs=attrs or {},
    )


def _types(*shapes):
    return [TensorType(shape) for shape in shapes]


class TestConv2d:
    def test_same_padding_shape(self):
        node = _node("conv2d", {"stride": 1, "pad": 1}, inputs=2)
        out = infer_node(node, _types((1, 3, 224, 224), (64, 3, 3, 3)))
        assert out[0].shape == (1, 64, 224, 224)

    def test_strided_shape(self):
        node = _node("conv2d", {"stride": 2, "pad": 3}, inputs=2)
        out = infer_node(node, _types((1, 3, 224, 224), (64, 3, 7, 7)))
        assert out[0].shape == (1, 64, 112, 112)

    def test_grouped_channels_validated(self):
        node = _node("conv2d", {"groups": 2}, inputs=2)
        infer_node(node, _types((1, 8, 10, 10), (16, 4, 1, 1)))
        with pytest.raises(OpError):
            infer_node(node, _types((1, 8, 10, 10), (16, 8, 1, 1)))

    def test_asymmetric_padding(self):
        node = _node("conv2d", {"pad_h": 3, "pad_w": 0}, inputs=2)
        out = infer_node(node, _types((1, 4, 20, 20), (8, 4, 7, 1)))
        assert out[0].shape == (1, 8, 20, 20)

    def test_symbolic_batch_flows(self):
        node = _node("conv2d", {"pad": 1}, inputs=2)
        out = infer_node(node, _types(("batch", 3, 32, 32), (8, 3, 3, 3)))
        assert out[0].shape == ("batch", 8, 32, 32)

    def test_collapsed_output_rejected(self):
        node = _node("conv2d", {}, inputs=2)
        with pytest.raises(OpError):
            infer_node(node, _types((1, 3, 2, 2), (8, 3, 5, 5)))

    def test_flops_2x_macs(self):
        node = _node("conv2d", {"pad": 1}, inputs=2)
        types = _types((1, 16, 8, 8), (32, 16, 3, 3))
        out = infer_node(node, types)
        flops = node_flops(node, types, out)
        assert flops == 2 * (1 * 32 * 8 * 8) * (16 * 3 * 3)

    def test_arity_enforced(self):
        node = _node("conv2d", inputs=1)
        with pytest.raises(OpError):
            infer_node(node, _types((1, 3, 8, 8)))


class TestDenseMatmul:
    def test_dense_shape_and_flops(self):
        node = _node("dense", inputs=2)
        types = _types((4, 128), (256, 128))
        out = infer_node(node, types)
        assert out[0].shape == (4, 256)
        assert node_flops(node, types, out) == 2 * 4 * 256 * 128

    def test_dense_feature_mismatch(self):
        node = _node("dense", inputs=2)
        with pytest.raises(OpError):
            infer_node(node, _types((4, 100), (256, 128)))

    def test_batched_matmul(self):
        node = _node("matmul", inputs=2)
        out = infer_node(node, _types((2, 8, 16, 32), (2, 8, 32, 64)))
        assert out[0].shape == (2, 8, 16, 64)

    def test_matmul_contraction_mismatch(self):
        node = _node("matmul", inputs=2)
        with pytest.raises(OpError):
            infer_node(node, _types((4, 8), (9, 4)))


class TestElementwise:
    def test_broadcast_shapes(self):
        node = _node("add", inputs=2)
        out = infer_node(node, _types((2, 3, 4), (3, 1)))
        assert out[0].shape == (2, 3, 4)

    def test_scalar_broadcast(self):
        node = _node("mul", inputs=2)
        out = infer_node(node, _types((5, 5), (1,)))
        assert out[0].shape == (5, 5)

    def test_incompatible_broadcast_rejected(self):
        node = _node("add", inputs=2)
        with pytest.raises(OpError):
            infer_node(node, _types((2, 3), (2, 4)))

    def test_unary_preserves_shape(self):
        for op in ("relu", "sigmoid", "tanh", "gelu", "swish", "exp"):
            out = infer_node(_node(op), _types((3, 7)))
            assert out[0].shape == (3, 7)

    def test_transcendental_costs_more_than_relu(self):
        types = _types((100,))
        relu = _node("relu")
        gelu = _node("gelu")
        relu_out = infer_node(relu, types)
        gelu_out = infer_node(gelu, types)
        assert node_flops(gelu, types, gelu_out) > node_flops(relu, types, relu_out)


class TestPoolingAndLayout:
    def test_max_pool(self):
        node = _node("max_pool", {"kernel": 2, "stride": 2})
        out = infer_node(node, _types((1, 8, 16, 16)))
        assert out[0].shape == (1, 8, 8, 8)

    def test_pool_requires_kernel(self):
        with pytest.raises(OpError):
            infer_node(_node("max_pool"), _types((1, 8, 16, 16)))

    def test_global_avg_pool(self):
        out = infer_node(_node("global_avg_pool"), _types((2, 64, 7, 7)))
        assert out[0].shape == (2, 64, 1, 1)

    def test_upsample(self):
        out = infer_node(_node("upsample", {"scale": 2}), _types((1, 4, 8, 8)))
        assert out[0].shape == (1, 4, 16, 16)

    def test_pixel_shuffle(self):
        out = infer_node(_node("pixel_shuffle", {"scale": 2}), _types((1, 16, 8, 8)))
        assert out[0].shape == (1, 4, 16, 16)

    def test_pixel_shuffle_channel_check(self):
        with pytest.raises(OpError):
            infer_node(_node("pixel_shuffle", {"scale": 2}), _types((1, 6, 8, 8)))

    def test_concat(self):
        node = _node("concat", {"axis": 1}, inputs=3)
        out = infer_node(node, _types((1, 2, 4), (1, 3, 4), (1, 5, 4)))
        assert out[0].shape == (1, 10, 4)

    def test_reshape_with_minus_one(self):
        node = _node("reshape", {"shape": (2, -1)})
        out = infer_node(node, _types((2, 3, 4)))
        assert out[0].shape == (2, 12)

    def test_reshape_mismatch_rejected(self):
        node = _node("reshape", {"shape": (5, 5)})
        with pytest.raises(OpError):
            infer_node(node, _types((2, 3)))

    def test_transpose(self):
        node = _node("transpose", {"axes": (1, 0, 2)})
        out = infer_node(node, _types((2, 3, 4)))
        assert out[0].shape == (3, 2, 4)

    def test_flatten(self):
        out = infer_node(_node("flatten"), _types((2, 3, 4, 5)))
        assert out[0].shape == (2, 60)

    def test_pad_op(self):
        node = _node("pad", {"pads": [1, 0, 1, 0]})
        out = infer_node(node, _types((4, 4)))
        assert out[0].shape == (6, 4)

    def test_slice_op(self):
        node = _node("slice", {"axis": 1, "start": 2, "stop": 5})
        out = infer_node(node, _types((4, 10)))
        assert out[0].shape == (4, 3)


class TestMiscOps:
    def test_embedding(self):
        node = _node("embedding", inputs=2)
        out = infer_node(node, _types((2, 128), (30000, 768)))
        assert out[0].shape == (2, 128, 768)

    def test_top_k_two_outputs(self):
        node = _node("top_k", {"k": 5}, outputs=2)
        out = infer_node(node, _types((2, 100)))
        assert len(out) == 2 and out[0].shape == (2, 5)

    def test_top_k_requires_k(self):
        with pytest.raises(OpError):
            infer_node(_node("top_k", outputs=2), _types((2, 100)))

    def test_glu_halves_axis(self):
        node = _node("glu", {"axis": 1})
        out = infer_node(node, _types((1, 8, 10)))
        assert out[0].shape == (1, 4, 10)

    def test_glu_odd_axis_rejected(self):
        with pytest.raises(OpError):
            infer_node(_node("glu", {"axis": 1}), _types((1, 7, 10)))

    def test_reduce_mean_keepdims(self):
        node = _node("reduce_mean", {"axes": [1], "keepdims": True})
        out = infer_node(node, _types((2, 8, 4)))
        assert out[0].shape == (2, 1, 4)

    def test_reduce_mean_drops_axes(self):
        node = _node("reduce_mean", {"axes": [1, 2]})
        out = infer_node(node, _types((2, 8, 4)))
        assert out[0].shape == (2,)

    def test_conv1d(self):
        node = _node("conv1d", {"pad": 15}, inputs=2)
        out = infer_node(node, _types((1, 512, 101), (512, 1, 31)))
        assert out[0].shape == (1, 512, 101)

    def test_conv_transpose2d_doubles(self):
        node = _node("conv_transpose2d", {"stride": 2, "pad": 1}, inputs=2)
        out = infer_node(node, _types((1, 256, 16, 16), (256, 128, 4, 4)))
        assert out[0].shape == (1, 128, 32, 32)

    def test_unknown_op_rejected(self):
        with pytest.raises(OpError):
            spec("quantum_conv")

    def test_categories_cover_calibration_keys(self):
        categories = {
            spec(op).category
            for op in ("conv2d", "dense", "softmax", "relu", "max_pool",
                       "layer_norm", "reshape", "embedding", "top_k")
        }
        assert categories == {
            "conv", "gemm", "softmax", "elementwise", "pool", "norm",
            "layout", "embedding", "sort",
        }
