"""Tests for the numpy reference executor (the §VI-A CPU oracle)."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.reference import EvaluationError, ReferenceExecutor, materialize_weight


def _run_single(op_builder, input_shape, data=None, seed=0):
    builder = GraphBuilder("g")
    x = builder.input("x", input_shape)
    y = op_builder(builder, x)
    graph = builder.finish([y])
    rng = np.random.default_rng(seed)
    payload = rng.normal(size=input_shape) if data is None else data
    executor = ReferenceExecutor(graph, seed=seed)
    return executor, payload, executor.run(x=payload)[y]


class TestWeights:
    def test_deterministic_per_name_and_seed(self):
        a = materialize_weight("w", (8, 8), seed=0)
        b = materialize_weight("w", (8, 8), seed=0)
        c = materialize_weight("w", (8, 8), seed=1)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_scaled_by_fan_in(self):
        small = materialize_weight("w", (8, 4))
        large = materialize_weight("v", (8, 4096))
        assert large.std() < small.std()

    def test_set_weight_overrides(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 4))
        y = builder.dense(x, 4, bias=False, name="fc")
        graph = builder.finish([y])
        executor = ReferenceExecutor(graph)
        executor.set_weight("fc.w", np.eye(4))
        data = np.arange(4.0).reshape(1, 4)
        assert np.allclose(executor.run(x=data)[y], data)


class TestConvSemantics:
    def test_identity_kernel(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 1, 5, 5))
        y = builder.conv2d(x, 1, 3, pad=1, bias=False, name="c")
        graph = builder.finish([y])
        executor = ReferenceExecutor(graph)
        kernel = np.zeros((1, 1, 3, 3))
        kernel[0, 0, 1, 1] = 1.0  # delta kernel = identity
        executor.set_weight("c.w", kernel)
        data = np.random.default_rng(0).normal(size=(1, 1, 5, 5))
        assert np.allclose(executor.run(x=data)[y], data)

    def test_stride_downsamples(self):
        _, _, out = _run_single(
            lambda b, x: b.conv2d(x, 4, 3, stride=2, pad=1), (1, 3, 8, 8)
        )
        assert out.shape == (1, 4, 4, 4)

    def test_grouped_conv_blocks_cross_talk(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 2, 4, 4))
        y = builder.conv2d(x, 2, 1, groups=2, bias=False, name="c")
        graph = builder.finish([y])
        executor = ReferenceExecutor(graph)
        executor.set_weight("c.w", np.ones((2, 1, 1, 1)))
        data = np.zeros((1, 2, 4, 4))
        data[0, 0] = 5.0  # only channel 0 carries signal
        out = executor.run(x=data)[y]
        assert np.all(out[0, 0] == 5.0)
        assert np.all(out[0, 1] == 0.0)  # group isolation

    def test_depthwise_conv1d(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 4, 10))
        weight = builder.weight("dw.w", (4, 1, 3))
        y = builder.node("conv1d", [x, weight], attrs={"pad": 1}, name="dw")
        graph = builder.finish([y])
        executor = ReferenceExecutor(graph)
        executor.set_weight(
            "dw.w", np.tile(np.array([0.0, 1.0, 0.0]), (4, 1, 1))
        )
        data = np.random.default_rng(0).normal(size=(1, 4, 10))
        assert np.allclose(executor.run(x=data)[y], data)

    def test_conv_transpose_shape_and_mass(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 2, 4, 4))
        weight = builder.weight("up.w", (2, 3, 4, 4))
        y = builder.node(
            "conv_transpose2d", [x, weight], attrs={"stride": 2, "pad": 1},
            name="up",
        )
        graph = builder.finish([y])
        out = ReferenceExecutor(graph).run(
            x=np.ones((1, 2, 4, 4))
        )[y]
        assert out.shape == (1, 3, 8, 8)


class TestOpSemantics:
    def test_pooling(self):
        data = np.arange(16.0).reshape(1, 1, 4, 4)
        _, _, out = _run_single(lambda b, x: b.max_pool(x, 2), (1, 1, 4, 4), data)
        assert out[0, 0].tolist() == [[5.0, 7.0], [13.0, 15.0]]
        _, _, avg = _run_single(lambda b, x: b.avg_pool(x, 2), (1, 1, 4, 4), data)
        assert avg[0, 0].tolist() == [[2.5, 4.5], [10.5, 12.5]]

    def test_pixel_shuffle_inverts_space_to_depth(self):
        data = np.random.default_rng(0).normal(size=(1, 4, 3, 3))
        _, _, out = _run_single(
            lambda b, x: b.pixel_shuffle(x, 2), (1, 4, 3, 3), data
        )
        assert out.shape == (1, 1, 6, 6)
        assert out[0, 0, 0, 0] == data[0, 0, 0, 0]
        assert out[0, 0, 0, 1] == data[0, 1, 0, 0]

    def test_layer_norm_standardizes(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (2, 8))
        y = builder.layer_norm(x, name="ln")
        graph = builder.finish([y])
        executor = ReferenceExecutor(graph)
        executor.set_weight("ln.scale", np.ones(8))
        executor.set_weight("ln.shift", np.zeros(8))
        data = np.random.default_rng(0).normal(size=(2, 8)) * 7 + 3
        out = executor.run(x=data)[y]
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_glu_gates(self):
        data = np.concatenate([np.ones((1, 2, 3)), np.zeros((1, 2, 3))], axis=1)
        _, _, out = _run_single(
            lambda b, x: b.glu(x, axis=1), (1, 4, 3), data
        )
        assert np.allclose(out, 0.5)  # 1 * sigmoid(0)

    def test_top_k_outputs(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 6))
        values, indices = builder.top_k(x, 2)
        graph = builder.finish([values, indices])
        data = np.array([[1.0, 9.0, 3.0, 7.0, 5.0, 0.0]])
        out = ReferenceExecutor(graph).run(x=data)
        assert out[values][0].tolist() == [9.0, 7.0]
        assert out[indices][0].tolist() == [1.0, 3.0]

    def test_embedding_gathers(self):
        builder = GraphBuilder("g")
        tokens = builder.input("t", (1, 3))
        y = builder.embedding(tokens, vocab=10, features=4, name="emb")
        graph = builder.finish([y])
        executor = ReferenceExecutor(graph)
        table = np.arange(40.0).reshape(10, 4)
        executor.set_weight("emb.table", table)
        out = executor.run(t=np.array([[0, 5, 9]]))[y]
        assert np.allclose(out[0, 1], table[5])

    def test_missing_input_raises(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 2))
        graph = builder.finish([builder.relu(x)])
        with pytest.raises(EvaluationError):
            ReferenceExecutor(graph).run()

    def test_attention_rows_are_convex_weights(self):
        builder = GraphBuilder("g")
        tokens = builder.input("t", (1, 6, 16))
        out = builder.multi_head_attention(tokens, heads=2)
        graph = builder.finish([out])
        result = ReferenceExecutor(graph).run(
            t=np.random.default_rng(0).normal(size=(1, 6, 16))
        )
        assert result[out].shape == (1, 6, 16)
        assert np.isfinite(result[out]).all()


class TestFusedEvaluation:
    def test_optimize_preserves_semantics_cnn(self):
        from repro.graph.passes import optimize

        def build():
            builder = GraphBuilder("g")
            x = builder.input("x", (2, 3, 12, 12))
            y = builder.conv2d(x, 8, 3, pad=1, name="c0")
            y = builder.batch_norm(y, name="bn0")
            y = builder.relu(y)
            y = builder.conv2d(y, 8, 3, pad=1, name="c1")
            y = builder.sigmoid(y)
            return builder.finish([y])

        data = np.random.default_rng(1).normal(size=(2, 3, 12, 12))
        plain = build()
        reference = ReferenceExecutor(plain, seed=3).run(x=data)
        fused_graph, report = optimize(build())
        assert report.groups >= 1
        fused = ReferenceExecutor(fused_graph, seed=3).run(x=data)
        key_plain = plain.outputs[0]
        key_fused = fused_graph.outputs[0]
        assert np.allclose(reference[key_plain], fused[key_fused], atol=1e-12)

    def test_optimize_preserves_semantics_attention(self):
        from repro.graph.passes import optimize

        def build():
            builder = GraphBuilder("g")
            tokens = builder.input("t", (1, 5, 8))
            out = builder.multi_head_attention(tokens, heads=2)
            return builder.finish([out])

        data = np.random.default_rng(2).normal(size=(1, 5, 8))
        plain = build()
        reference = ReferenceExecutor(plain, seed=0).run(t=data)[plain.outputs[0]]
        fused_graph, _ = optimize(build())
        fused = ReferenceExecutor(fused_graph, seed=0).run(t=data)[
            fused_graph.outputs[0]
        ]
        assert np.allclose(reference, fused, atol=1e-12)
