"""Typed-diagnostics tests: the GraphValidationError taxonomy and the
hardened compile pipeline's "typed error, never a bare crash" contract."""

import pytest

from repro.compiler.errors import CompileError
from repro.compiler.lowering import LoweringError
from repro.compiler.pipeline import compile_graph
from repro.compiler.regalloc import AllocationError
from repro.compiler.tensorize import TensorizeError
from repro.compiler.tiling import TilingError
from repro.core.config import dtu2_config
from repro.core.datatypes import DType
from repro.graph.builder import GraphBuilder
from repro.graph.ir import (
    DuplicateNodeError,
    DuplicateProducerError,
    Graph,
    GraphCycleError,
    GraphError,
    GraphValidationError,
    Node,
    SignatureError,
    TensorRefError,
    TensorType,
    UndefinedTensorError,
    UnproducedOutputError,
    UntypedTensorError,
)
from repro.graph.shape_inference import infer_shapes


def _mlp():
    builder = GraphBuilder("mlp")
    data = builder.input("x", (2, 8))
    out = builder.dense(data, 16, name="fc0")
    out = builder.relu(out, name="act0")
    out = builder.dense(out, 4, name="head")
    return builder.finish(outputs=[out])


class TestTaxonomy:
    """Every validation failure raises its dedicated subclass, and every
    subclass stays catchable as GraphError (and ValueError)."""

    def test_hierarchy(self):
        for subclass in (
            GraphCycleError, UndefinedTensorError, DuplicateProducerError,
            DuplicateNodeError, UnproducedOutputError, UntypedTensorError,
            TensorRefError, SignatureError,
        ):
            assert issubclass(subclass, GraphValidationError)
            assert issubclass(subclass, GraphError)
            assert issubclass(subclass, ValueError)

    def test_compile_errors_fold_into_graph_error(self):
        from repro.compiler.codegen import CodegenError

        for subclass in (
            LoweringError, TilingError, TensorizeError, CodegenError
        ):
            assert issubclass(subclass, CompileError)
            assert issubclass(subclass, ValueError)
        # AllocationError keeps its historical RuntimeError base too.
        assert issubclass(AllocationError, CompileError)
        assert issubclass(AllocationError, RuntimeError)

    def test_undefined_tensor(self):
        graph = _mlp()
        graph.nodes[0].inputs[0] = "ghost"
        with pytest.raises(UndefinedTensorError) as excinfo:
            graph.validate()
        assert excinfo.value.node == "fc0"
        assert "ghost" in str(excinfo.value)

    def test_duplicate_producer(self):
        graph = _mlp()
        graph.nodes[1].outputs[0] = graph.nodes[0].outputs[0]
        with pytest.raises(DuplicateProducerError) as excinfo:
            graph.validate()
        assert excinfo.value.tensor == graph.nodes[0].outputs[0]

    def test_producer_colliding_with_input(self):
        graph = _mlp()
        graph.nodes[0].outputs[0] = "x"
        with pytest.raises(DuplicateProducerError) as excinfo:
            graph.validate()
        assert excinfo.value.node == "fc0"

    def test_duplicate_node_name(self):
        graph = _mlp()
        graph.nodes[1].name = "fc0"
        with pytest.raises(DuplicateNodeError) as excinfo:
            graph.validate()
        assert excinfo.value.node == "fc0"

    def test_unproduced_output(self):
        graph = _mlp()
        graph.outputs.append("phantom")
        with pytest.raises(UnproducedOutputError) as excinfo:
            graph.validate()
        assert excinfo.value.tensor == "phantom"

    def test_untyped_input(self):
        graph = _mlp()
        del graph.tensor_types["x"]
        with pytest.raises(UntypedTensorError) as excinfo:
            graph.validate()
        assert excinfo.value.tensor == "x"

    def test_cycle_names_members(self):
        graph = _mlp()
        node = graph.nodes[1]
        node.inputs[0] = node.outputs[0]
        with pytest.raises(GraphCycleError) as excinfo:
            graph.validate()
        assert "act0" in str(excinfo.value)

    def test_nonstring_ref_at_construction(self):
        with pytest.raises(TensorRefError):
            Node(name="n", op_type="relu", inputs=[42], outputs=["y"])

    def test_nonstring_ref_after_mutation(self):
        graph = _mlp()
        graph.nodes[0].inputs[0] = 42
        with pytest.raises(TensorRefError) as excinfo:
            graph.validate()
        assert excinfo.value.node == "fc0"


class TestSignatureChecks:
    def test_clean_graph_passes(self):
        _mlp().validate(signatures=True)

    def test_unknown_op(self):
        graph = _mlp()
        graph.nodes[1].op_type = "quantum_fft"
        with pytest.raises(SignatureError) as excinfo:
            graph.validate(signatures=True)
        assert excinfo.value.node == "act0"
        assert "quantum_fft" in str(excinfo.value)

    def test_rank_mismatch(self):
        graph = _mlp()
        name = graph.nodes[0].outputs[0]
        declared = graph.tensor_types[name]
        graph.tensor_types[name] = TensorType(
            declared.shape + (7,), declared.dtype
        )
        with pytest.raises(SignatureError) as excinfo:
            graph.validate(signatures=True)
        assert excinfo.value.node == "fc0"

    def test_dtype_mismatch(self):
        graph = _mlp()
        name = graph.nodes[0].outputs[0]
        declared = graph.tensor_types[name]
        graph.tensor_types[name] = TensorType(declared.shape, DType.INT8)
        with pytest.raises(SignatureError):
            graph.validate(signatures=True)

    def test_bad_attr_is_typed_with_node_name(self):
        builder = GraphBuilder("cnn")
        data = builder.input("x", (1, 3, 8, 8))
        out = builder.conv2d(data, 4, kernel=3, pad=1, name="conv0")
        graph = builder.finish(outputs=[out])
        graph.node_by_name("conv0").attrs["stride"] = 0
        with pytest.raises(SignatureError) as excinfo:
            graph.validate(signatures=True)
        assert excinfo.value.node == "conv0"
        assert "stride=0" in str(excinfo.value)

    def test_fused_nodes_are_skipped(self):
        from repro.graph.passes import optimize

        graph, _report = optimize(_mlp(), fusion=True)
        assert any(node.op_type == "fused" for node in graph.nodes)
        graph.validate(signatures=True)

    def test_cycle_beats_signature_check(self):
        """A cycle that also corrupts arity must report as a cycle."""
        graph = _mlp()
        node = graph.nodes[0]
        node.inputs[0] = node.outputs[0]
        with pytest.raises(GraphCycleError):
            graph.validate(signatures=True)


class TestCompilePipeline:
    def test_valid_graph_compiles(self):
        result = compile_graph(_mlp(), dtu2_config(), dtype=DType.FP16)
        assert result.model.kernels
        assert result.fusion is True
        assert not result.fell_back

    def test_does_not_mutate_caller_graph(self):
        graph = _mlp()
        names_before = [node.name for node in graph.nodes]
        compile_graph(graph, dtu2_config(), fusion=True)
        assert [node.name for node in graph.nodes] == names_before

    def test_malformed_graph_raises_typed(self):
        graph = _mlp()
        graph.nodes[0].inputs[0] = "ghost"
        with pytest.raises(GraphValidationError) as excinfo:
            compile_graph(graph, dtu2_config())
        assert "fc0" in str(excinfo.value)

    def test_transpose_bad_axes_is_typed(self):
        builder = GraphBuilder("t")
        data = builder.input("x", (2, 3, 4))
        out = builder.transpose(data, (0, 2, 1))
        graph = builder.finish(outputs=[out])
        graph.nodes[0].attrs["axes"] = (0, 2, 9)
        with pytest.raises(GraphError):
            compile_graph(graph, dtu2_config())

    def test_symbolic_dims_raise_lowering_error(self):
        builder = GraphBuilder("sym")
        data = builder.input("x", ("batch", 8))
        out = builder.dense(data, 4, name="fc")
        graph = builder.finish(outputs=[out])
        with pytest.raises(LoweringError) as excinfo:
            compile_graph(graph, dtu2_config())
        assert excinfo.value.node == "fc"


class TestShapeInferenceProvenance:
    """Satellite: typed errors (with node name) out of shape inference,
    plus dynamic-dim binding edge cases."""

    def _symbolic_pixel_shuffle(self):
        graph = Graph(name="sym", inputs=["x"], outputs=["ps.out"])
        graph.tensor_types["x"] = TensorType((1, "chan", 4, 4))
        graph.nodes = [
            Node(name="ps", op_type="pixel_shuffle", inputs=["x"],
                 outputs=["ps.out"], attrs={"scale": 2}),
        ]
        return graph

    def test_unbound_symbol_in_static_rule_is_typed(self):
        # pixel_shuffle requires a static channel count; the unbound
        # symbol must surface as an OpError from _static, not a TypeError.
        graph = self._symbolic_pixel_shuffle()
        with pytest.raises(GraphError):
            infer_shapes(graph)
        with pytest.raises((GraphError,)) as excinfo:
            infer_shapes(self._symbolic_pixel_shuffle())
        assert not isinstance(excinfo.value, TypeError)

    def test_binding_resolves_static_rule(self):
        graph = self._symbolic_pixel_shuffle()
        from repro.graph.shape_inference import bind_shapes

        bound = bind_shapes(graph, chan=8)
        assert bound.tensor_type("ps.out").shape == (1, 2, 8, 8)

    def test_partial_binding_keeps_symbols(self):
        builder = GraphBuilder("partial")
        data = builder.input("x", ("batch", "seq", 8))
        out = builder.dense(data, 4, name="fc")
        graph = builder.finish(outputs=[out])
        from repro.graph.shape_inference import bind_shapes, dynamic_symbols

        bound = bind_shapes(graph, batch=2)
        assert dynamic_symbols(bound) == {"seq"}
        fully = bind_shapes(bound, seq=3)
        assert fully.tensor_type("fc.out").shape == (2, 3, 4)

    def test_binding_then_validate_signatures(self):
        builder = GraphBuilder("bindcheck")
        data = builder.input("x", ("batch", 3, 8, 8))
        out = builder.conv2d(data, 4, kernel=3, pad=1, name="conv0")
        graph = builder.finish(outputs=[out])
        from repro.graph.shape_inference import bind_shapes

        bound = bind_shapes(graph, batch=2)
        bound.validate(signatures=True)
        assert bound.tensor_type("conv0.out").shape == (2, 4, 8, 8)
