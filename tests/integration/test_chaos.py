"""Chaos harness acceptance: storms, invariants, and byte-exact replay.

Holds the PR's acceptance pins:

- the seeded replica-kill scenario completes with zero lost requests,
  availability above the floor, and the killed device observed going
  quarantined -> repaired -> reintegrated;
- two chaos runs from the same root seed produce byte-identical reports;
- ``repro chaos --quick`` exits 0 (the CI smoke job runs exactly this).
"""

import dataclasses
import json
import pathlib

import pytest

from repro.chaos import (
    INVARIANTS,
    SCENARIOS,
    declared_invariants,
    render_table,
    run_scenario,
    run_suite,
    scenario_names,
)
from repro.cli import main
from repro.serving.fleet import FleetTenantStats, LifecycleEvent


def _invariant(name):
    return dict(INVARIANTS)[name]


class TestReplicaKillAcceptance:
    """The headline scenario: a replica dies mid-run and nobody notices."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(SCENARIOS["replica-kill"], seed=0)

    def test_passes_every_invariant(self, result):
        assert result.violations == []
        assert result.passed

    def test_zero_lost_requests(self, result):
        for stats in result.report.tenants.values():
            assert stats.served == stats.offered
            assert stats.failed == 0 and stats.shed == 0

    def test_availability_meets_the_floor(self, result):
        floor = SCENARIOS["replica-kill"].availability_floor
        for stats in result.report.tenants.values():
            assert stats.availability_while_healthy >= floor

    def test_killed_device_walks_the_lifecycle(self, result):
        transitions = result.report.transitions("r1")
        assert "quarantined" in transitions
        assert "repaired" in transitions
        assert "reintegrated" in transitions
        order = [
            transitions.index("quarantined"),
            transitions.index("repaired"),
            transitions.index("reintegrated"),
        ]
        assert order == sorted(order)

    def test_failover_absorbed_the_fatal_outcomes(self, result):
        assert result.report.hedged_requests > 0
        assert result.report.failovers > 0


class TestDeterminism:
    def test_same_seed_reports_are_byte_identical(self):
        first = run_suite(quick=True, seed=7)
        second = run_suite(quick=True, seed=7)
        assert first.to_json() == second.to_json()
        assert first.to_json().encode() == second.to_json().encode()

    def test_scenario_report_json_is_byte_identical(self):
        # the acceptance pin: raw report dicts, not just summaries
        first = run_scenario(SCENARIOS["replica-kill"], seed=3)
        second = run_scenario(SCENARIOS["replica-kill"], seed=3)
        dump = lambda r: json.dumps(r.report.to_dict(), sort_keys=True)  # noqa: E731
        assert dump(first) == dump(second)

    def test_different_root_seed_changes_the_suite(self):
        assert (
            run_suite(quick=True, seed=0).to_json()
            != run_suite(quick=True, seed=1).to_json()
        )

    def test_render_table_is_deterministic(self):
        suite = run_suite(quick=True, seed=0)
        again = run_suite(quick=True, seed=0)
        assert render_table(suite) == render_table(again)


class TestSuite:
    def test_quick_suite_passes(self):
        suite = run_suite(quick=True)
        assert suite.passed
        assert [r.scenario.name for r in suite.results] == scenario_names(
            quick=True
        )

    def test_full_suite_passes(self):
        assert run_suite().passed

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown chaos scenario"):
            run_suite(names=["not-a-scenario"])

    def test_quick_subset_is_a_strict_subset(self):
        assert set(scenario_names(quick=True)) < set(scenario_names())


class TestInvariantChecks:
    """The checks must actually detect violations, not just pass."""

    @pytest.fixture()
    def result(self):
        return run_scenario(SCENARIOS["baseline"], seed=0)

    def test_conservation_catches_lost_requests(self, result):
        scenario, report = result.scenario, result.report
        report.tenants["a"].offered += 1  # one request vanished
        violations = _invariant("conservation")(scenario, report, None)
        assert violations and "tenant 'a'" in violations[0]

    def test_availability_floor_catches_unavailability(self, result):
        scenario, report = result.scenario, result.report
        stats = report.tenants["a"]
        stats.served -= 5
        stats.failed += 5
        violations = _invariant("availability-floor")(scenario, report, None)
        assert violations and "availability-floor" in violations[0]

    def test_monotone_time_catches_backwards_events(self, result):
        scenario, report = result.scenario, result.report
        report.events.append(LifecycleEvent(5e8, "r0", "quarantined"))
        report.events.append(LifecycleEvent(1e8, "r0", "repaired"))
        violations = _invariant("monotone-time")(scenario, report, None)
        assert any("precedes" in v for v in violations)

    def test_monotone_time_catches_horizon_overrun(self, result):
        scenario, report = result.scenario, result.report
        beyond = report.horizon_ns + 1e9
        report.events.append(LifecycleEvent(beyond, "r0", "retired"))
        violations = _invariant("monotone-time")(scenario, report, None)
        assert any("beyond horizon" in v for v in violations)

    def test_obs_consistency_catches_counter_drift(self):
        from repro.obs import Observability

        obs = Observability()
        result = run_scenario(SCENARIOS["replica-kill"], seed=0, obs=obs)
        assert result.passed  # consistent as produced
        # now drift a counter behind the report's back
        obs.metrics.counter("fleet_failovers_total", "").inc(41)
        violations = _invariant("obs-consistency")(
            result.scenario, result.report, obs.metrics
        )
        assert any("fleet_failovers_total" in v for v in violations)

    def test_failed_suite_reports_violations_and_fails(self):
        # an impossible floor makes the baseline scenario fail cleanly
        strict = dataclasses.replace(
            SCENARIOS["transient-storm"], availability_floor=1.01
        )
        result = run_scenario(strict, seed=0)
        assert not result.passed
        assert any("availability-floor" in v for v in result.violations)


class TestChaosCli:
    def test_quick_cli_run_exits_zero(self, capsys):
        assert main(["chaos", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "replica-kill" in out
        assert "PASS" in out and "FAIL" not in out

    def test_single_scenario_json(self, capsys):
        assert main(["chaos", "--scenario", "replica-kill", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["results"][0]["scenario"] == "replica-kill"

    def test_list_scenarios(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_unknown_scenario_is_a_usage_error(self, capsys):
        assert main(["chaos", "--scenario", "nope"]) == 2

    def test_profile_fleet_prints_fleet_gauges(self, capsys):
        assert main(["profile", "resnet50", "--fleet"]) == 0
        out = capsys.readouterr().out
        assert "fleet_healthy_replicas" in out
        assert "fleet_quarantines_total" in out
        assert "fleet_availability{a}" in out


class TestSilentCorruptionAcceptance:
    """The SDC headline: a corruption storm serves zero wrong answers."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(SCENARIOS["silent-corruption-storm"], seed=0)

    def test_passes_every_invariant(self, result):
        assert result.violations == []
        assert result.passed

    def test_defended_fleet_serves_zero_corrupted(self, result):
        sdc = result.report.sdc
        assert sdc["injected"] > 0
        assert sdc["served_corrupted"] == 0

    def test_ledger_is_conserved(self, result):
        sdc = result.report.sdc
        assert sdc["detected_total"] == sum(sdc["detected"].values())
        assert (
            sdc["detected_total"] + sdc["served_corrupted"]
            == sdc["injected"]
        )

    def test_detection_latency_is_bounded(self, result):
        budget = SCENARIOS["silent-corruption-storm"].sdc_detection_latency_ms
        assert result.report.sdc["max_detection_latency_ms"] <= budget

    def test_undefended_control_is_actually_exposed(self, result):
        # the zero above is only meaningful if the same storm corrupts
        # served results once the defenses are off
        control = result.sdc_control
        assert control is not None
        assert control["served_corrupted"] >= 1
        assert control["detected_total"] == 0

    def test_sdc_control_is_serialized(self, result):
        data = result.to_dict()
        assert data["sdc_control"]["served_corrupted"] >= 1
        # non-sdc scenarios must not grow the key
        baseline = run_scenario(SCENARIOS["baseline"], seed=0)
        assert "sdc_control" not in baseline.to_dict()


class TestDefectiveCoreOutbreak:
    """Device-targeted outbreak: containment isolates the bad board."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(SCENARIOS["defective-core-outbreak"], seed=0)

    def test_passes_every_invariant(self, result):
        assert result.violations == []
        assert result.passed

    def test_containment_convicted_the_defective_board(self, result):
        sdc = result.report.sdc
        assert sdc["quarantines"] + sdc["retirements"] >= 1
        served = SCENARIOS["defective-core-outbreak"].max_sdc_served
        assert sdc["served_corrupted"] <= served


class TestDetachedGolden:
    def test_original_scenarios_match_the_pre_sdc_golden(self, capsys):
        # The pinned pre-SDC report: running the original quick scenarios
        # with the detection layer in-tree but detached must reproduce it
        # byte-for-byte (the sdc-smoke CI job cmp's the same pair).
        golden = (
            pathlib.Path(__file__).parent / "data" / "chaos_quick_golden.json"
        ).read_text()
        argv = ["chaos", "--json", "--workers", "1"]
        for name in (
            "baseline", "transient-storm", "replica-kill", "flash-crowd",
            "power-cap-storm",
        ):
            argv += ["--scenario", name]
        assert main(argv) == 0
        assert capsys.readouterr().out == golden


class TestDeclaredInvariants:
    def test_every_scenario_declares_the_core_set(self):
        # Catalogue invariants plus the sweep checks run_scenario applies
        # outside the catalogue (reruns at swept multipliers / defenses
        # off, so they cannot be a pure report predicate).
        known = {name for name, _ in INVARIANTS} | {
            "shed-monotonicity", "cap-monotonicity", "undefended-exposure",
        }
        for scenario in SCENARIOS.values():
            names = declared_invariants(scenario)
            assert "conservation" in names
            assert "monotone-time" in names
            assert set(names) <= known

    def test_sdc_scenarios_declare_correctness(self):
        storm = declared_invariants(SCENARIOS["silent-corruption-storm"])
        assert "end-to-end-correctness" in storm
        assert "undefended-exposure" in storm
        baseline = declared_invariants(SCENARIOS["baseline"])
        assert "end-to-end-correctness" not in baseline

    def test_list_cli_prints_per_scenario_invariants(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "invariants:" in out
        assert "end-to-end-correctness" in out


class TestEndToEndCorrectnessCheck:
    """The new invariant must detect violations, not just pass."""

    def test_sdc_section_on_a_detached_scenario_is_a_violation(self):
        result = run_scenario(SCENARIOS["baseline"], seed=0)
        result.report.sdc = {"injected": 0}
        violations = _invariant("end-to-end-correctness")(
            result.scenario, result.report, None
        )
        assert any("detached" in v for v in violations)

    def test_corrupted_serve_above_budget_is_caught(self):
        result = run_scenario(SCENARIOS["silent-corruption-storm"], seed=0)
        report = result.report
        report.sdc["served_corrupted"] += 1
        violations = _invariant("end-to-end-correctness")(
            result.scenario, report, None
        )
        assert violations

    def test_leaked_ledger_event_is_caught(self):
        result = run_scenario(SCENARIOS["silent-corruption-storm"], seed=0)
        report = result.report
        report.sdc["injected"] += 1  # one event in no bucket
        violations = _invariant("end-to-end-correctness")(
            result.scenario, report, None
        )
        assert violations


def test_default_stats_container_roundtrips():
    stats = FleetTenantStats(tenant="t")
    assert stats.availability == 1.0
    assert stats.availability_while_healthy == 1.0
    assert stats.to_dict()["tenant"] == "t"
