"""§IV-E in the detailed simulator: tenants truly run concurrently.

"isolated hardware resources prevent interference among each other, system
throughput is increased without compromising inference latency" — measured
here by co-running two models on disjoint processing-group slices of one
simulated chip and comparing each tenant's latency to its solo run.
"""

import pytest

from repro.core.accelerator import Accelerator
from repro.models import build
from repro.runtime.executor import Executor
from repro.runtime.runtime import Device


def _compile(device, model):
    return device.compile(build(model), batch=1)


def _solo(model, groups):
    device = Device.open("i20")
    return device.launch(_compile(device, model), num_groups=groups)


@pytest.fixture(scope="module")
def colocated():
    accelerator = Accelerator.cloudblazer_i20()
    device = Device(accelerator)
    jobs = {}
    for tenant, model in (("alpha", "resnet50"), ("beta", "srresnet")):
        compiled = _compile(device, model)
        assignment = accelerator.resources.assign(tenant, 3)
        jobs[tenant] = (compiled, assignment)
    executor = Executor(accelerator)
    results = executor.run_concurrent(jobs)
    return results, jobs


def test_both_tenants_complete(colocated):
    results, _ = colocated
    assert results["alpha"].latency_ns > 0
    assert results["beta"].latency_ns > 0


def test_tenants_actually_overlap_in_time(colocated):
    results, _ = colocated
    alpha_end = max(t.end_ns for t in results["alpha"].kernel_timings)
    beta_start = min(t.start_ns for t in results["beta"].kernel_timings)
    assert beta_start < alpha_end  # concurrent, not serialized


def test_isolation_bounds_interference(colocated):
    """Co-running on disjoint slices costs each tenant little vs solo —
    the §IV-E claim. Only L3 port sharing remains, so allow a modest tax."""
    results, _ = colocated
    solo_alpha = _solo("resnet50", 3)
    solo_beta = _solo("srresnet", 3)
    assert results["alpha"].latency_ns < 1.6 * solo_alpha.latency_ns
    assert results["beta"].latency_ns < 1.6 * solo_beta.latency_ns


def test_disjoint_slices_enforced(colocated):
    _, jobs = colocated
    alpha_groups = set(jobs["alpha"][1].groups)
    beta_groups = set(jobs["beta"][1].groups)
    assert not alpha_groups & beta_groups


def test_throughput_gain_from_colocation(colocated):
    """Two tenants co-running finish sooner than running back-to-back."""
    results, _ = colocated
    concurrent_makespan = max(
        results["alpha"].latency_ns, results["beta"].latency_ns
    )
    serial_makespan = (
        _solo("resnet50", 3).latency_ns + _solo("srresnet", 3).latency_ns
    )
    assert concurrent_makespan < serial_makespan


def test_chip_power_stays_within_tdp(colocated):
    results, _ = colocated
    assert results["alpha"].mean_power_watts <= 150.0 + 1e-9
