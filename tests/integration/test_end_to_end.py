"""Integration tests: the full import -> optimize -> compile -> execute flow."""

import pytest

from repro import (
    Device,
    FeatureFlags,
    GraphBuilder,
    build_model,
    estimate_model,
    speedup,
)
from repro.core.accelerator import Accelerator
from repro.graph.onnx_like import load, save
from repro.runtime.profiler import Profile


class TestFullPipeline:
    def test_resnet50_end_to_end_on_i20(self):
        device = Device.open("i20")
        compiled = device.compile(build_model("resnet50"), batch=1)
        result = device.launch(compiled)
        assert 0.05 < result.latency_ms < 10.0
        assert 10.0 < result.mean_power_watts < 150.0
        profile = Profile(compiled, result)
        assert profile.dense_flops_share() > 0.8

    def test_serialized_model_roundtrip_through_runtime(self, tmp_path):
        path = tmp_path / "resnet50.json"
        save(build_model("resnet50"), path)
        device = Device.open("i20")
        result = device.launch(device.compile(load(path), batch=1))
        assert result.latency_ns > 0

    def test_i20_faster_than_i10_in_simulation(self):
        graph = build_model("resnet50")
        i20 = Device.open("i20")
        i10 = Device.open("i10")
        fast = i20.launch(i20.compile(graph, batch=1), num_groups=3)
        slow = i10.launch(i10.compile(graph, batch=1), num_groups=1)
        assert fast.latency_ns < slow.latency_ns

    def test_simulator_and_roofline_agree_on_magnitude(self):
        """The two performance models must tell the same coarse story."""
        device = Device.open("i20")
        simulated = device.launch(
            device.compile(build_model("resnet50"), batch=1), num_groups=3
        )
        analytical = estimate_model("resnet50", "i20")
        ratio = simulated.latency_ns / analytical.latency_ns
        assert 0.2 < ratio < 5.0

    def test_multi_tenant_concurrent_assignments(self):
        accelerator = Accelerator.cloudblazer_i20()
        device = Device(accelerator)
        compiled = device.compile(build_model("resnet50"), batch=1)
        accelerator.resources.assign("tenant-b", 3)  # occupy one cluster
        result = device.launch(compiled, num_groups=3, tenant="tenant-a")
        assert result.latency_ns > 0
        accelerator.resources.release("tenant-b")

    def test_custom_operator_development_flow(self):
        """§V-B: a developer-built custom network compiles and runs."""
        builder = GraphBuilder("custom")
        x = builder.input("x", (1, 16, 64, 64))
        trunk = builder.conv2d(x, 32, 3, pad=1)
        trunk = builder.swish(trunk)
        gate = builder.conv2d(x, 32, 1)
        gate = builder.sigmoid(gate)
        fused = builder.mul(trunk, gate)
        pooled = builder.global_avg_pool(fused)
        logits = builder.dense(builder.flatten(pooled), 5)
        scores, indices = builder.top_k(builder.softmax(logits), 3)
        graph = builder.finish([scores, indices])
        device = Device.open("i20")
        result = device.launch(device.compile(graph))
        assert result.latency_ns > 0


class TestFeatureInteractions:
    """Cross-subsystem behaviour of the Table II feature set."""

    def _run(self, features=None, model="resnet50", groups=3):
        accelerator = Accelerator.cloudblazer_i20(features)
        device = Device(accelerator)
        compiled = device.compile(build_model(model), batch=1)
        return device.launch(compiled, num_groups=groups)

    def test_disabling_everything_still_runs(self):
        stripped = FeatureFlags(
            operator_fusion=False,
            repeat_dma=False,
            icache_prefetch=False,
            sparse_dma=False,
            l2_broadcast=False,
            affinity_allocation=False,
            fine_grained_vmm=False,
            direct_l1_l3_dma=False,
            power_management=False,
        )
        result = self._run(stripped)
        assert result.latency_ns > 0

    def test_full_featured_beats_stripped(self):
        stripped = FeatureFlags(
            operator_fusion=False,
            repeat_dma=False,
            icache_prefetch=False,
            sparse_dma=False,
            l2_broadcast=False,
            power_management=False,
        )
        fast = self._run()
        slow = self._run(stripped)
        assert fast.latency_ns < slow.latency_ns

    def test_fusion_reduces_kernel_count_and_latency(self):
        fused = self._run()
        unfused = self._run(FeatureFlags(operator_fusion=False))
        assert len(fused.kernel_timings) < len(unfused.kernel_timings)
        assert fused.latency_ns < unfused.latency_ns

    def test_prefetch_eliminates_icache_stalls(self):
        with_prefetch = self._run()
        without = self._run(FeatureFlags(icache_prefetch=False))
        assert with_prefetch.counters["icache_prefetch_hits"] > 0
        assert without.counters["icache_prefetch_hits"] == 0
        stall_with = sum(t.icache_stall_ns for t in with_prefetch.kernel_timings)
        stall_without = sum(t.icache_stall_ns for t in without.kernel_timings)
        assert stall_with < stall_without

    def test_repeat_dma_cuts_configurations(self):
        with_repeat = self._run()
        without = self._run(FeatureFlags(repeat_dma=False))
        assert (
            with_repeat.counters["dma_configurations"]
            < without.counters["dma_configurations"]
        )

    def test_broadcast_cuts_weight_wire_traffic(self):
        with_broadcast = self._run(groups=3)
        without = self._run(FeatureFlags(l2_broadcast=False), groups=3)
        assert (
            with_broadcast.counters["dma_wire_bytes"]
            < without.counters["dma_wire_bytes"]
        )


class TestAnalyticalConsistency:
    def test_speedup_transitivity(self):
        for model in ("resnet50", "srresnet"):
            via = speedup(model, "i20", "a10") * speedup(model, "a10", "t4")
            direct = speedup(model, "i20", "t4")
            assert via == pytest.approx(direct, rel=1e-9)

    def test_estimates_deterministic(self):
        first = estimate_model("bert_large", "i20").latency_ns
        second = estimate_model("bert_large", "i20").latency_ns
        assert first == second
