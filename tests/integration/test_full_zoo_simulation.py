"""Integration: every Table III model through the detailed simulator."""

import pytest

from repro.models import MODEL_NAMES, build
from repro.perfmodel.latency import estimate_model
from repro.runtime.runtime import Device


@pytest.fixture(scope="module")
def simulated():
    results = {}
    for model in MODEL_NAMES:
        device = Device.open("i20")
        compiled = device.compile(build(model), batch=1)
        results[model] = device.launch(compiled, num_groups=6)
    return results


@pytest.mark.parametrize("model", MODEL_NAMES)
def test_every_model_simulates(simulated, model):
    result = simulated[model]
    assert result.latency_ns > 0
    assert result.energy_joules > 0
    assert 0 < result.mean_power_watts <= 150.0


@pytest.mark.parametrize("model", MODEL_NAMES)
def test_simulator_within_factor_of_roofline(simulated, model):
    """The two performance models must agree on magnitude for every model
    (they share FLOP/byte accounting but differ in overhead structure)."""
    analytical = estimate_model(model, "i20")
    ratio = simulated[model].latency_ns / analytical.latency_ns
    assert 0.15 < ratio < 3.0, f"{model}: ratio {ratio:.2f}"


def test_relative_ordering_roughly_consistent(simulated):
    """Model-to-model latency ordering should broadly agree between the
    simulator and the analytical model (Spearman-style check)."""
    from scipy.stats import spearmanr

    sim_latencies = [simulated[m].latency_ns for m in MODEL_NAMES]
    analytic_latencies = [
        estimate_model(m, "i20").latency_ns for m in MODEL_NAMES
    ]
    correlation, _pvalue = spearmanr(sim_latencies, analytic_latencies)
    assert correlation > 0.8


def test_power_never_exceeds_tdp(simulated):
    for model, result in simulated.items():
        assert result.mean_power_watts <= 150.0 + 1e-9, model


def test_heaviest_models_are_heaviest_in_both(simulated):
    sim_top = sorted(
        MODEL_NAMES, key=lambda m: simulated[m].latency_ns, reverse=True
    )[:3]
    assert "unet" in sim_top and "srresnet" in sim_top
