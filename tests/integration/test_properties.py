"""Cross-cutting property-based tests over the whole stack.

The compiler invariant that matters most: **no pass changes numerics**.
Random elementwise DAGs go through fusion/DCE and must evaluate identically;
generated VLIW code must match the reference executor; serialization must be
lossless under arbitrary graph shapes.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler.codegen import (
    execute_kernel,
    generate_elementwise_kernel,
    supports,
)
from repro.graph.builder import GraphBuilder
from repro.graph.onnx_like import export_graph, import_graph
from repro.graph.passes import optimize
from repro.graph.reference import ReferenceExecutor

_UNARY = ("relu", "sigmoid", "tanh", "gelu", "swish", "exp")
_BINARY = ("add", "sub", "mul", "maximum", "minimum")


@st.composite
def elementwise_dags(draw):
    """A random DAG of elementwise ops over a shared 1-D extent."""
    extent = draw(st.integers(1, 70))
    num_inputs = draw(st.integers(1, 3))
    num_ops = draw(st.integers(1, 10))
    builder = GraphBuilder("random")
    tensors = [
        builder.input(f"in{index}", (extent,)) for index in range(num_inputs)
    ]
    for _ in range(num_ops):
        if draw(st.booleans()):
            op = draw(st.sampled_from(_UNARY))
            source = draw(st.sampled_from(tensors))
            tensors.append(getattr(builder, op)(source))
        else:
            op = draw(st.sampled_from(_BINARY))
            left = draw(st.sampled_from(tensors))
            right = draw(st.sampled_from(tensors))
            tensors.append(getattr(builder, op)(left, right))
    graph = builder.finish([tensors[-1]])
    return graph, extent, num_inputs


def _inputs(extent, num_inputs, seed):
    rng = np.random.default_rng(seed)
    return {
        f"in{index}": rng.uniform(-3, 3, size=extent)
        for index in range(num_inputs)
    }


@settings(max_examples=40, deadline=None)
@given(spec=elementwise_dags(), seed=st.integers(0, 1000))
def test_property_optimize_preserves_semantics(spec, seed):
    graph, extent, num_inputs = spec
    payload = _inputs(extent, num_inputs, seed)
    before = ReferenceExecutor(graph).run(**payload)[graph.outputs[0]]
    document = export_graph(graph)  # snapshot, since optimize mutates
    optimized, _report = optimize(import_graph(document))
    after = ReferenceExecutor(optimized).run(**payload)[optimized.outputs[0]]
    assert np.allclose(before, after, atol=1e-9, equal_nan=True)


@settings(max_examples=25, deadline=None)
@given(spec=elementwise_dags(), seed=st.integers(0, 1000))
def test_property_codegen_matches_reference(spec, seed):
    graph, extent, num_inputs = spec
    payload = _inputs(extent, num_inputs, seed)
    reference = ReferenceExecutor(graph).run(**payload)[graph.outputs[0]]
    optimized, _ = optimize(graph)
    # codegen covers single-output elementwise kernels: run each node whose
    # shape it supports and stitch the dataflow by hand.
    environment = dict(payload)
    for node in optimized.topological_nodes():
        if not supports(node):
            return  # draw produced something codegen skips; vacuous case
        kernel = generate_elementwise_kernel(node, optimized)
        result = execute_kernel(
            kernel, {name: environment[name] for name in kernel.inputs}
        )
        environment[node.outputs[0]] = result
    got = environment[optimized.outputs[0]]
    assert np.allclose(got, reference, atol=2e-3)


@settings(max_examples=30, deadline=None)
@given(spec=elementwise_dags())
def test_property_serialization_lossless(spec):
    graph, _extent, _inputs_count = spec
    restored = import_graph(export_graph(graph))
    assert len(restored.nodes) == len(graph.nodes)
    assert restored.outputs == graph.outputs
    for original, copy in zip(graph.nodes, restored.nodes):
        assert original.op_type == copy.op_type
        assert original.inputs == copy.inputs


@settings(max_examples=30, deadline=None)
@given(spec=elementwise_dags(), seed=st.integers(0, 100))
def test_property_reference_execution_deterministic(spec, seed):
    graph, extent, num_inputs = spec
    payload = _inputs(extent, num_inputs, seed)
    first = ReferenceExecutor(graph, seed=1).run(**payload)
    second = ReferenceExecutor(graph, seed=1).run(**payload)
    for name in graph.outputs:
        assert np.array_equal(first[name], second[name])
