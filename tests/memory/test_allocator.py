"""Unit + property tests for affinity-aware L2 allocation (§V-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import dtu2_config
from repro.memory.allocator import AffinityAllocator, PlacementError
from repro.memory.hierarchy import MemoryLevel
from repro.memory.ports import PortedL2
from repro.sim import Simulator

KB = 1024


def _allocator(affinity=True):
    sim = Simulator()
    level = MemoryLevel(sim, dtu2_config().l2_per_group)
    return AffinityAllocator(PortedL2(level, 4), affinity_enabled=affinity)


def test_affine_placement_preferred():
    allocator = _allocator()
    placement = allocator.place("t", 64 * KB, consumer_core=2)
    assert placement.bank == 2 and placement.affine


def test_spill_to_least_loaded_when_full():
    allocator = _allocator()
    bank_cap = allocator.bank_capacity_bytes
    allocator.place("big", bank_cap, consumer_core=1)  # fills bank 1
    spilled = allocator.place("next", 64 * KB, consumer_core=1)
    assert spilled.bank != 1 and not spilled.affine


def test_round_robin_when_affinity_disabled():
    allocator = _allocator(affinity=False)
    banks = [
        allocator.place(f"t{i}", 64 * KB, consumer_core=0).bank for i in range(4)
    ]
    assert sorted(banks) == [0, 1, 2, 3]


def test_oversized_tensor_rejected():
    allocator = _allocator()
    with pytest.raises(PlacementError):
        allocator.place("huge", allocator.bank_capacity_bytes + 1, 0)


def test_duplicate_rejected():
    allocator = _allocator()
    allocator.place("t", KB, 0)
    with pytest.raises(PlacementError):
        allocator.place("t", KB, 1)


def test_release_returns_capacity():
    allocator = _allocator()
    allocator.place("t", allocator.bank_capacity_bytes, 0)
    allocator.release("t")
    assert allocator.place("u", allocator.bank_capacity_bytes, 0).bank == 0


def test_release_unknown_raises():
    with pytest.raises(PlacementError):
        _allocator().release("ghost")


def test_exhaustion_raises():
    allocator = _allocator()
    for bank in range(4):
        allocator.place(f"fill{bank}", allocator.bank_capacity_bytes, bank)
    with pytest.raises(PlacementError):
        allocator.place("one-more", KB, 0)


def test_access_time_reflects_affinity():
    allocator = _allocator()
    allocator.place("near", 4 * KB, consumer_core=0)
    near = allocator.access_time_ns("near", core=0)
    far = allocator.access_time_ns("near", core=1)
    assert far > near


def test_affine_fraction_tracks_placements():
    allocator = _allocator()
    assert allocator.affine_fraction() == 1.0
    allocator.place("a", 4 * KB, 0)
    bank_cap = allocator.bank_capacity_bytes
    allocator.place("big", bank_cap - 8 * KB, 1)
    allocator.place("spilled", 16 * KB, 1)  # cannot fit in bank 1
    assert 0.0 < allocator.affine_fraction() < 1.0


def test_affinity_beats_round_robin_on_mean_access_time():
    """The §V-B claim, measured: affinity-aware placement lowers latency."""
    affine_runs = _allocator(affinity=True)
    blind_runs = _allocator(affinity=False)
    affine_times, blind_times = [], []
    for index in range(16):
        # Non-uniform consumers so blind round-robin cannot luck into the
        # affine layout.
        core = (index * 2) % 4
        affine_runs.place(f"t{index}", 32 * KB, core)
        blind_runs.place(f"t{index}", 32 * KB, core)
        affine_times.append(affine_runs.access_time_ns(f"t{index}", core))
        blind_times.append(blind_runs.access_time_ns(f"t{index}", core))
    assert sum(affine_times) < sum(blind_times)


@settings(max_examples=30, deadline=None)
@given(
    requests=st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 256)), min_size=1, max_size=40
    )
)
def test_property_bank_accounting_never_negative_or_overflows(requests):
    allocator = _allocator()
    placed = 0
    for core, size_kb in requests:
        try:
            allocator.place(f"t{placed}", size_kb * KB, core)
            placed += 1
        except PlacementError:
            pass
    for bank in range(4):
        free = allocator.bank_free_bytes(bank)
        assert 0 <= free <= allocator.bank_capacity_bytes
