"""Unit tests for the HBM2/HBM2E device model."""

import pytest

from repro.memory.hbm import HBM2, HBM2E, HbmModel


def test_paper_bandwidth_step():
    """§IV: HBM2E is 1.6x the HBM2 bandwidth at the same 16 GB capacity."""
    assert HBM2E.peak_bandwidth_gbps / HBM2.peak_bandwidth_gbps == pytest.approx(
        1.6, rel=0.01
    )
    assert HBM2E.capacity_gb == HBM2.capacity_gb == 16


def test_channel_bandwidth_divides_peak():
    model = HbmModel(HBM2E)
    assert model.channel_bandwidth_gbps * HBM2E.channels == pytest.approx(
        HBM2E.peak_bandwidth_gbps
    )


class TestEfficiency:
    def test_monotone_in_request_size(self):
        model = HbmModel(HBM2E)
        sizes = [64, 256, 1024, 65536, 1 << 20]
        efficiencies = [model.efficiency(size) for size in sizes]
        assert efficiencies == sorted(efficiencies)

    def test_single_granule_is_half(self):
        model = HbmModel(HBM2E)
        assert model.efficiency(HBM2E.access_granularity_bytes) == pytest.approx(0.5)

    def test_large_requests_approach_peak(self):
        model = HbmModel(HBM2E)
        assert model.efficiency(1 << 22) > 0.99

    def test_zero_request_raises(self):
        with pytest.raises(ValueError):
            HbmModel(HBM2E).efficiency(0)


class TestStreams:
    def test_single_stream_gets_peak_share(self):
        model = HbmModel(HBM2E)
        assert model.effective_bandwidth_gbps(1 << 20, streams=1) == pytest.approx(
            HBM2E.peak_bandwidth_gbps * model.efficiency(1 << 20)
        )

    def test_streams_split_fairly(self):
        model = HbmModel(HBM2E)
        one = model.effective_bandwidth_gbps(1 << 20, streams=1)
        four = model.effective_bandwidth_gbps(1 << 20, streams=4)
        assert four == pytest.approx(one / 4)

    def test_invalid_streams_raises(self):
        with pytest.raises(ValueError):
            HbmModel(HBM2E).effective_bandwidth_gbps(1024, streams=0)


def test_transfer_time_includes_row_overhead():
    model = HbmModel(HBM2)
    tiny = model.transfer_time_ns(1)
    assert tiny > HBM2.row_overhead_ns


def test_hbm2e_faster_than_hbm2_for_same_request():
    old = HbmModel(HBM2)
    new = HbmModel(HBM2E)
    assert new.transfer_time_ns(1 << 20) < old.transfer_time_ns(1 << 20)
