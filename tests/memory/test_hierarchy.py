"""Unit tests for the memory hierarchy levels."""

import pytest

from repro.core.config import MemoryLevelConfig, dtu2_config
from repro.memory.hierarchy import MemoryHierarchy, MemoryLevel, OutOfMemoryError
from repro.sim import Simulator


def _level(sim, capacity=1000, bandwidth=100.0, ports=1, latency=10.0):
    return MemoryLevel(
        sim,
        MemoryLevelConfig(
            name="test", capacity_bytes=capacity, bandwidth_gbps=bandwidth,
            ports=ports, latency_ns=latency,
        ),
    )


class TestAllocation:
    def test_allocate_and_free(self):
        level = _level(Simulator())
        level.allocate("a", 400)
        assert level.used_bytes == 400
        assert level.free_bytes == 600
        level.free("a")
        assert level.used_bytes == 0

    def test_overflow_raises(self):
        level = _level(Simulator())
        level.allocate("a", 800)
        with pytest.raises(OutOfMemoryError):
            level.allocate("b", 300)

    def test_duplicate_name_raises(self):
        level = _level(Simulator())
        level.allocate("a", 10)
        with pytest.raises(OutOfMemoryError):
            level.allocate("a", 10)

    def test_free_unknown_raises(self):
        with pytest.raises(OutOfMemoryError):
            _level(Simulator()).free("ghost")

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            _level(Simulator()).allocate("a", -1)

    def test_lookup_and_reset(self):
        level = _level(Simulator())
        level.allocate("a", 10, bank=2)
        assert level.lookup("a").bank == 2
        level.reset()
        with pytest.raises(OutOfMemoryError):
            level.lookup("a")


class TestTiming:
    def test_transfer_time_is_latency_plus_bytes_over_bandwidth(self):
        level = _level(Simulator(), bandwidth=100.0, latency=10.0)
        assert level.transfer_time_ns(1000) == pytest.approx(10.0 + 10.0)

    def test_transfer_process_advances_clock(self):
        sim = Simulator()
        level = _level(sim, bandwidth=100.0, latency=10.0)
        sim.spawn(level.transfer(1000))
        sim.run()
        assert sim.now == pytest.approx(20.0)
        assert level.bytes_transferred == 1000

    def test_single_port_serializes_transfers(self):
        sim = Simulator()
        level = _level(sim, ports=1, bandwidth=100.0, latency=0.0)
        for _ in range(3):
            sim.spawn(level.transfer(1000))
        sim.run()
        assert sim.now == pytest.approx(30.0)

    def test_multi_port_parallelizes(self):
        sim = Simulator()
        level = _level(sim, ports=4, bandwidth=100.0, latency=0.0)
        for _ in range(4):
            sim.spawn(level.transfer(1000))
        sim.run()
        assert sim.now == pytest.approx(10.0)


class TestMemoryHierarchy:
    def test_builds_paper_topology(self):
        chip = dtu2_config()
        sim = Simulator()
        hierarchy = MemoryHierarchy(
            sim, chip.l1_per_core, chip.l2_per_group, chip.l3,
            cores=chip.total_cores, groups=chip.total_groups,
        )
        assert len(hierarchy.l1) == 24
        assert len(hierarchy.l2) == 6
        assert hierarchy.l3.capacity_bytes == chip.l3.capacity_bytes

    def test_stats_aggregate_traffic(self):
        chip = dtu2_config()
        sim = Simulator()
        hierarchy = MemoryHierarchy(
            sim, chip.l1_per_core, chip.l2_per_group, chip.l3, cores=2, groups=1,
        )
        sim.spawn(hierarchy.l1[0].transfer(100))
        sim.spawn(hierarchy.l2[0].transfer(200))
        sim.spawn(hierarchy.l3.transfer(300))
        sim.run()
        stats = hierarchy.stats()
        assert (stats.l1_bytes, stats.l2_bytes, stats.l3_bytes) == (100, 200, 300)
        assert stats.total_bytes == 600
