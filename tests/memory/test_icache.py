"""Unit tests for the instruction buffer (cache mode + prefetch, §IV-B)."""

import pytest

from repro.memory.icache import InstructionBuffer


def _buffer(capacity=64 * 1024, cache=True, prefetch=True, bandwidth=32.0):
    return InstructionBuffer(
        capacity_bytes=capacity,
        load_bandwidth_gbps=bandwidth,
        load_latency_ns=100.0,
        cache_mode=cache,
        prefetch_enabled=prefetch,
    )


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        _buffer(capacity=0)


class TestColdMiss:
    def test_first_fetch_misses_and_stalls(self):
        buffer = _buffer()
        result = buffer.fetch("k0", 16 * 1024, now_ns=0.0)
        assert not result.hit and not result.prefetched
        assert result.stall_ns == pytest.approx(100.0 + 16 * 1024 / 32.0)
        assert buffer.misses == 1

    def test_repeat_fetch_hits_in_cache_mode(self):
        buffer = _buffer()
        buffer.fetch("k0", 16 * 1024, 0.0)
        again = buffer.fetch("k0", 16 * 1024, 1000.0)
        assert again.hit and again.stall_ns == 0.0
        assert buffer.hits == 1

    def test_no_cache_mode_always_misses(self):
        buffer = _buffer(cache=False, prefetch=False)
        buffer.fetch("k0", 16 * 1024, 0.0)
        again = buffer.fetch("k0", 16 * 1024, 1000.0)
        assert not again.hit and again.stall_ns > 0
        assert buffer.misses == 2


class TestPrefetch:
    def test_completed_prefetch_eliminates_stall(self):
        buffer = _buffer()
        done = buffer.prefetch("k1", 16 * 1024, now_ns=0.0)
        result = buffer.fetch("k1", 16 * 1024, now_ns=done + 1.0)
        assert result.prefetched and result.stall_ns == 0.0
        assert buffer.prefetch_hits == 1

    def test_partial_prefetch_charges_remaining(self):
        buffer = _buffer()
        done = buffer.prefetch("k1", 16 * 1024, now_ns=0.0)
        result = buffer.fetch("k1", 16 * 1024, now_ns=done / 2)
        assert result.prefetched
        assert result.stall_ns == pytest.approx(done / 2)

    def test_prefetch_disabled_is_noop(self):
        buffer = _buffer(prefetch=False)
        assert buffer.prefetch("k1", 1024, 5.0) == 5.0
        result = buffer.fetch("k1", 1024, 10.0)
        assert not result.prefetched and result.stall_ns > 0

    def test_prefetch_of_resident_kernel_is_noop(self):
        buffer = _buffer()
        buffer.fetch("k0", 1024, 0.0)
        assert buffer.prefetch("k0", 1024, 50.0) == 50.0

    def test_prefetched_kernel_becomes_resident(self):
        buffer = _buffer()
        done = buffer.prefetch("k1", 1024, 0.0)
        buffer.fetch("k1", 1024, done)
        assert buffer.fetch("k1", 1024, done + 10).hit


class TestOversizedKernels:
    def test_oversized_kernel_streams_with_cache_mode(self):
        """§IV-B: cache mode 'solves the problem of loading extremely large
        kernels that exceed the capacity of the instruction buffer'."""
        buffer = _buffer(capacity=8 * 1024)
        big = 32 * 1024
        with_cache = buffer.fetch("big", big, 0.0).stall_ns
        plain = _buffer(capacity=8 * 1024, cache=False, prefetch=False)
        without_cache = plain.fetch("big", big, 0.0).stall_ns
        assert with_cache < without_cache

    def test_eviction_is_lru(self):
        buffer = _buffer(capacity=2048)
        buffer.fetch("a", 1024, 0.0)
        buffer.fetch("b", 1024, 1.0)
        buffer.fetch("a", 1024, 2.0)  # touch a -> b becomes LRU
        buffer.fetch("c", 1024, 3.0)  # evicts b
        assert buffer.fetch("a", 1024, 4.0).hit
        assert not buffer.fetch("b", 1024, 5.0).hit


def test_invalidate_clears_everything():
    buffer = _buffer()
    buffer.fetch("a", 1024, 0.0)
    buffer.prefetch("b", 1024, 0.0)
    buffer.invalidate()
    assert not buffer.fetch("a", 1024, 10.0).hit
    assert not buffer.fetch("b", 1024, 10.0).prefetched
