"""Unit tests for the 4-port L2 with core affinity (§IV-B, §V-B)."""

import pytest

from repro.core.config import dtu2_config
from repro.memory.hierarchy import MemoryLevel
from repro.memory.ports import PortedL2
from repro.sim import Simulator


@pytest.fixture
def ported():
    sim = Simulator()
    level = MemoryLevel(sim, dtu2_config().l2_per_group)
    return PortedL2(level, cores_per_group=4)


def test_four_banks(ported):
    assert ported.banks == 4


def test_each_core_has_its_own_bank(ported):
    banks = [ported.bank_of_core(core) for core in range(4)]
    assert sorted(banks) == [0, 1, 2, 3]


def test_core_index_out_of_group_raises(ported):
    with pytest.raises(ValueError):
        ported.bank_of_core(4)


def test_affine_access_has_no_penalty(ported):
    routing = ported.route(core_index=1, bank=1)
    assert routing.affine
    assert routing.extra_latency_ns == 0.0


def test_cross_bank_access_pays_penalty(ported):
    routing = ported.route(core_index=1, bank=3)
    assert not routing.affine
    assert routing.extra_latency_ns == ported.cross_bank_penalty_ns


def test_bad_bank_raises(ported):
    with pytest.raises(ValueError):
        ported.route(0, 4)


def test_access_time_affine_faster(ported):
    affine = ported.access_time_ns(2, 2, 4096)
    cross = ported.access_time_ns(2, 0, 4096)
    assert cross > affine


def test_four_cores_access_without_interference():
    """§IV-B: '4 compute cores ... can access L2 memory without interference'."""
    sim = Simulator()
    level = MemoryLevel(sim, dtu2_config().l2_per_group)
    ported = PortedL2(level, cores_per_group=4)
    for core in range(4):
        sim.spawn(ported.access(core, ported.bank_of_core(core), 1 << 20))
    sim.run()
    solo = ported.access_time_ns(0, 0, 1 << 20)
    assert sim.now == pytest.approx(solo)


def test_single_port_level_serializes():
    from repro.core.config import dtu1_config

    sim = Simulator()
    level = MemoryLevel(sim, dtu1_config().l2_per_group)
    ported = PortedL2(level, cores_per_group=8)
    for core in range(4):
        sim.spawn(ported.access(core, 0, 1 << 20))
    sim.run()
    solo = ported.access_time_ns(0, 0, 1 << 20)
    assert sim.now == pytest.approx(4 * solo)
