"""Tests for the Table III model zoo: structure, shapes, FLOP sanity."""

import pytest

from repro.graph.ops import node_flops
from repro.graph.shape_inference import bind_shapes, dynamic_symbols
from repro.models.zoo import MODEL_NAMES, TABLE_III, build, entry


def test_exactly_ten_models():
    assert len(TABLE_III) == 10
    assert len(MODEL_NAMES) == 10


def test_table3_categories():
    categories = [row.category for row in TABLE_III]
    assert categories.count("Object Detection") == 3
    assert categories.count("Image Classification") == 3
    for single in ("Segmentation", "Super Resolution", "NLP", "Speech Recognition"):
        assert categories.count(single) == 1


def test_table3_sources():
    sources = {row.name: row.source for row in TABLE_III}
    assert sources["yolo_v3"] == "Pytorch"
    assert sources["inception_v4"] == "Tensorflow"
    assert sources["bert_large"] == "Tensorflow"
    assert sources["conformer"] == "Pytorch"


def test_entry_lookup():
    assert entry("resnet50").display_name == "Resnet50 v1.5"
    with pytest.raises(KeyError):
        entry("alexnet")


@pytest.fixture(scope="module")
def built():
    return {name: build(name) for name in MODEL_NAMES}


@pytest.fixture(scope="module")
def bound(built):
    return {name: bind_shapes(graph, batch=1) for name, graph in built.items()}


def _total_flops(graph):
    total = 0.0
    for node in graph.topological_nodes():
        inputs = [graph.tensor_type(name) for name in node.inputs]
        outputs = [graph.tensor_type(name) for name in node.outputs]
        total += node_flops(node, inputs, outputs)
    return total


class TestEveryModel:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_builds_and_validates(self, built, name):
        built[name].validate()

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_batch_is_symbolic(self, built, name):
        assert "batch" in dynamic_symbols(built[name])

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_binds_fully_static(self, bound, name):
        assert dynamic_symbols(bound[name]) == set()

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_has_outputs(self, built, name):
        assert built[name].outputs


class TestInputShapes:
    """Table III input sizes."""

    CASES = {
        "yolo_v3": (1, 3, 608, 608),
        "centernet": (1, 3, 512, 512),
        "retinaface": (1, 3, 640, 640),
        "vgg16": (1, 3, 224, 224),
        "resnet50": (1, 3, 224, 224),
        "inception_v4": (1, 3, 299, 299),
        "unet": (1, 3, 512, 512),
        "srresnet": (1, 3, 224, 224),
        "conformer": (1, 1, 80, 401),
    }

    @pytest.mark.parametrize("name,shape", sorted(CASES.items()))
    def test_image_inputs(self, bound, name, shape):
        graph = bound[name]
        assert graph.tensor_type(graph.inputs[0]).shape == shape

    def test_bert_sequence_length(self, bound):
        graph = bound["bert_large"]
        assert graph.tensor_type("tokens").shape == (1, 384)


class TestFlopSanity:
    """FLOP totals (2 x MACs) within a factor ~1.5 of published counts."""

    EXPECTED_GFLOPS = {
        "yolo_v3": 141.0,       # 65.9 GMACs at 608^2
        "resnet50": 8.2,        # 4.1 GMACs
        "vgg16": 31.0,          # 15.5 GMACs
        "inception_v4": 25.0,   # 12.3 GMACs
        "bert_large": 250.0,    # ~340M params, seq 384
    }

    @pytest.mark.parametrize("name,expected", sorted(EXPECTED_GFLOPS.items()))
    def test_flop_counts(self, bound, name, expected):
        total = _total_flops(bound[name]) / 1e9
        assert expected / 1.5 < total < expected * 1.5

    def test_batch_scales_conv_flops_linearly(self):
        single = _total_flops(bind_shapes(build("resnet50"), batch=1))
        double = _total_flops(bind_shapes(build("resnet50"), batch=2))
        assert double == pytest.approx(2 * single, rel=0.01)


class TestArchitecturalLandmarks:
    def test_vgg16_has_13_convs_3_denses(self, built):
        ops = [node.op_type for node in built["vgg16"].nodes]
        assert ops.count("conv2d") == 13
        assert ops.count("dense") == 3

    def test_resnet50_has_53_convs(self, built):
        # 53 = 1 stem + 16 blocks x 3 + 4 downsample projections
        ops = [node.op_type for node in built["resnet50"].nodes]
        assert ops.count("conv2d") == 53

    def test_yolo_detects_at_three_scales(self, bound):
        graph = bound["yolo_v3"]
        strides = set()
        for output in graph.outputs:
            shape = graph.tensor_type(output).shape
            strides.add(608 // shape[-1])
        assert strides == {8, 16, 32}

    def test_centernet_uses_topk(self, built):
        assert any(node.op_type == "top_k" for node in built["centernet"].nodes)

    def test_retinaface_has_nine_heads(self, built):
        assert len(built["retinaface"].outputs) == 9

    def test_unet_concats_skips(self, built):
        concats = [n for n in built["unet"].nodes if n.op_type == "concat"]
        assert len(concats) == 4

    def test_srresnet_16_residual_blocks(self, built):
        adds = [n for n in built["srresnet"].nodes if n.op_type == "add"]
        assert len(adds) == 17  # 16 block skips + 1 global skip

    def test_srresnet_upscales_4x(self, bound):
        graph = bound["srresnet"]
        out_shape = graph.tensor_type(graph.outputs[0]).shape
        assert out_shape == (1, 3, 896, 896)

    def test_bert_has_24_layers_of_mha(self, built):
        softmaxes = [n for n in built["bert_large"].nodes if n.op_type == "softmax"]
        assert len(softmaxes) == 24

    def test_bert_parameter_count(self, bound):
        weight_bytes = bound["bert_large"].weight_bytes()
        parameters = weight_bytes / 4  # FP32 builder types
        assert 300e6 < parameters < 400e6  # ~340 M

    def test_conformer_has_depthwise_convs(self, built):
        graph = built["conformer"]
        depthwise = [
            node for node in graph.nodes
            if node.op_type == "conv1d"
            and graph.tensor_type(node.inputs[1]).shape[1] == 1
        ]
        assert len(depthwise) == 17

    def test_conformer_uses_glu(self, built):
        assert any(node.op_type == "glu" for node in built["conformer"].nodes)

    def test_relu_models_carry_sparsity_annotations(self, built):
        graph = built["resnet50"]
        sparse_nodes = [n for n in graph.nodes if n.attr("sparsity", 0) > 0]
        assert sparse_nodes

    def test_leaky_relu_models_do_not(self, built):
        graph = built["yolo_v3"]
        for node in graph.nodes:
            if node.op_type == "leaky_relu":
                assert node.attr("sparsity", 0) == 0
