"""Regenerate golden_trace.json from the current exporter output.

Run from the repository root::

    PYTHONPATH=src:tests python tests/obs/data/make_golden.py

then load the refreshed file in chrome://tracing or
https://ui.perfetto.dev to confirm it still renders before committing.
"""

import json
from pathlib import Path

from obs.test_exporters import GOLDEN, sample_observability

from repro.obs import to_chrome_trace

if __name__ == "__main__":
    document = to_chrome_trace(sample_observability().tracer)
    GOLDEN.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {Path(GOLDEN).resolve()}")
