"""Exporter tests: Chrome trace (golden file), Prometheus text, JSON snapshot.

The golden file pins the exact Chrome ``trace_event`` document the
exporter produces for a small fixed stack trace — regenerate it with
``python tests/obs/data/make_golden.py`` after an intentional format
change, and re-check the result loads in chrome://tracing / Perfetto.
"""

import json
import math
from pathlib import Path

from repro.obs import (
    Observability,
    save_chrome_trace,
    to_chrome_trace,
    to_json_snapshot,
    to_prometheus_text,
)
from repro.obs.metrics import DEFAULT_BUCKETS_MS

GOLDEN = Path(__file__).parent / "data" / "golden_trace.json"


def sample_observability() -> Observability:
    """A miniature whole-stack recording: one request, one launch,
    two sim intervals, one fault, two power samples."""
    obs = Observability()
    tracer = obs.tracer
    request = tracer.begin(
        "request:0", layer="serving", start_ns=0.0, track="tenant.a", tenant="a"
    )
    launch = tracer.begin(
        "launch:resnet50", layer="runtime", start_ns=100.0,
        parent=request.context, track="device", model="resnet50",
    )
    tracer.add_span(
        "conv_0", layer="sim", start_ns=150.0, end_ns=900.0,
        parent=launch.context, track="core.c0g0", cat="core",
    )
    tracer.add_span(
        "conv_0", layer="sim", start_ns=120.0, end_ns=400.0,
        parent=launch.context, track="dma.c0g0", cat="dma",
    )
    tracer.add_span(
        "ecc.ce", layer="fault", start_ns=300.0, end_ns=900.0,
        parent=launch.context, track="L3", recovered=True,
    )
    launch.end(1000.0, status="ok")
    request.end(1100.0, status="ok")
    tracer.add_event("shed", layer="serving", time_ns=50.0, track="tenant.a")
    tracer.add_counter_sample("chip_power_watts", layer="power", time_ns=500.0, watts=71.5)
    tracer.add_counter_sample("chip_power_watts", layer="power", time_ns=1000.0, watts=68.0)

    metrics = obs.metrics
    metrics.counter("serving_requests_total", "requests by status").inc(
        tenant="a", status="ok"
    )
    metrics.gauge("power_mean_watts", unit="watts").set(69.75)
    metrics.histogram(
        "serving_request_latency_ms", unit="ms", buckets=DEFAULT_BUCKETS_MS
    ).observe(1.1e-3, tenant="a")
    return obs


class TestChromeTrace:
    def test_matches_golden_file(self):
        document = to_chrome_trace(sample_observability().tracer)
        assert document == json.loads(GOLDEN.read_text())

    def test_one_process_per_layer_in_stack_order(self):
        document = to_chrome_trace(sample_observability().tracer)
        processes = {
            event["pid"]: event["args"]["name"]
            for event in document["traceEvents"]
            if event["name"] == "process_name"
        }
        assert list(processes) == [1, 2, 3, 4, 5]
        assert processes[1].startswith("serving")
        assert processes[3] == "DTU 2.0 sim"

    def test_slices_carry_span_identity(self):
        document = to_chrome_trace(sample_observability().tracer)
        launch = next(
            event for event in document["traceEvents"]
            if event["ph"] == "X" and event["name"] == "launch:resnet50"
        )
        assert launch["args"]["parent_id"] is not None
        assert launch["args"]["status"] == "ok"
        assert launch["ts"] == 0.1  # 100 ns in us
        assert launch["dur"] == 0.9

    def test_instant_and_counter_events(self):
        document = to_chrome_trace(sample_observability().tracer)
        phases = {event["ph"] for event in document["traceEvents"]}
        assert {"X", "i", "C", "M"} <= phases

    def test_save_round_trips(self, tmp_path):
        path = save_chrome_trace(
            sample_observability().tracer, tmp_path / "t.json"
        )
        assert json.loads(path.read_text())["displayTimeUnit"] == "ns"


class TestPrometheusText:
    def test_counter_with_labels(self):
        text = to_prometheus_text(sample_observability().metrics)
        assert "# TYPE serving_requests_total counter" in text
        assert 'serving_requests_total{status="ok",tenant="a"} 1' in text

    def test_gauge(self):
        text = to_prometheus_text(sample_observability().metrics)
        assert "power_mean_watts 69.75" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = to_prometheus_text(sample_observability().metrics)
        assert (
            'serving_request_latency_ms_bucket{le="0.1",tenant="a"} 1' in text
        )
        assert (
            'serving_request_latency_ms_bucket{le="+Inf",tenant="a"} 1' in text
        )
        assert 'serving_request_latency_ms_count{tenant="a"} 1' in text


class TestJsonSnapshot:
    def test_snapshot_is_json_serializable(self):
        snapshot = to_json_snapshot(sample_observability())
        round_tripped = json.loads(json.dumps(snapshot))
        assert {"metrics", "spans", "events"} <= set(round_tripped)

    def test_spans_preserve_hierarchy(self):
        snapshot = to_json_snapshot(sample_observability())
        by_name = {span["name"]: span for span in snapshot["spans"]}
        launch = by_name["launch:resnet50"]
        request = by_name["request:0"]
        assert launch["parent_id"] == request["span_id"]
        assert launch["trace_id"] == request["trace_id"]

    def test_histogram_sample_shape(self):
        snapshot = to_json_snapshot(sample_observability())
        histogram = next(
            metric for metric in snapshot["metrics"]
            if metric["name"] == "serving_request_latency_ms"
        )
        sample = histogram["samples"][0]
        assert sample["count"] == 1
        assert math.isclose(sample["sum"], 1.1e-3)
        assert sum(sample["bucket_counts"]) == 1
