"""Cross-layer integration tests: one TraceContext threaded from serving
admission through Device.launch and the executor down to simulator
intervals and fault events — and zero cost when no hub is attached."""

import json

import pytest

from repro.cli import main
from repro.faults import FaultInjector, FaultPlan
from repro.models.zoo import build
from repro.obs import Observability
from repro.runtime.runtime import Device
from repro.serving import (
    InferenceServer,
    TenantConfig,
    TrafficPattern,
    generate_trace,
)


@pytest.fixture(scope="module")
def launch_obs():
    obs = Observability()
    device = Device.open("i20", obs=obs)
    compiled = device.compile(build("resnet50"), batch=1)
    result = device.launch(compiled, num_groups=3)
    return obs, result


class TestLaunchTelemetry:
    def test_layers_present(self, launch_obs):
        obs, _result = launch_obs
        assert {"runtime", "sim", "power"} <= obs.tracer.layers()

    def test_kernel_spans_parent_on_launch(self, launch_obs):
        obs, _result = launch_obs
        launch = next(
            span for span in obs.tracer.spans
            if span.name.startswith("launch:")
        )
        runs = [
            span for span in obs.tracer.spans
            if span.name.startswith("run:") and span.layer == "runtime"
        ]
        assert runs
        # launch -> attempt -> run: the run joins the launch's trace.
        assert all(span.trace_id == launch.trace_id for span in runs)

    def test_sim_intervals_join_the_same_trace(self, launch_obs):
        obs, _result = launch_obs
        launch = next(
            span for span in obs.tracer.spans
            if span.name.startswith("launch:")
        )
        sim_spans = obs.tracer.spans_in("sim")
        assert len(sim_spans) > 50
        assert all(span.trace_id == launch.trace_id for span in sim_spans)

    def test_engine_busy_metrics_match_simulator_trace(self, launch_obs):
        obs, _result = launch_obs
        busy = obs.metrics.get("sim_engine_busy_ns_total")
        core_busy = sum(
            value for labels, value in busy.samples()
            if labels["engine"] == "core"
        )
        sim_core_total = sum(
            span.duration_ns for span in obs.tracer.spans_in("sim")
            if span.track.startswith("core.")
        )
        assert core_busy == pytest.approx(sim_core_total)

    def test_kernel_category_shares_sum_to_one(self, launch_obs):
        obs, _result = launch_obs
        duration = obs.metrics.get("runtime_kernel_duration_ns")
        total = sum(series.sum for _labels, series in duration.samples())
        assert total > 0
        shares = [
            series.sum / total for _labels, series in duration.samples()
        ]
        assert sum(shares) == pytest.approx(1.0)

    def test_launch_counters(self, launch_obs):
        obs, _result = launch_obs
        launches = obs.metrics.get("runtime_launches_total")
        (labels, value), = launches.samples()
        assert labels["status"] == "ok"
        assert value == 1.0


class TestZeroCost:
    def test_results_bit_identical_with_and_without_obs(self):
        def run(obs):
            device = Device.open("i20", obs=obs)
            compiled = device.compile(build("unet"), batch=1)
            return device.launch(compiled, num_groups=2)

        bare = run(None)
        observed = run(Observability())
        assert observed.latency_ns == bare.latency_ns
        assert observed.energy_joules == bare.energy_joules
        assert observed.counters == bare.counters

    def test_faulty_results_bit_identical(self):
        def run(obs):
            plan = FaultPlan(seed=3, dma_corrupt_rate=0.05, ecc_ce_rate=0.05)
            device = Device.open("i20", obs=obs)
            device.accelerator.attach_faults(FaultInjector(plan))
            compiled = device.compile(build("resnet50"), batch=1)
            return device.launch(compiled, num_groups=2, max_retries=3)

        bare = run(None)
        observed = run(Observability())
        assert observed.latency_ns == bare.latency_ns


class TestServingThreading:
    def test_measurement_thread_reaches_every_layer(self):
        obs = Observability()
        plan = FaultPlan(seed=0, dma_corrupt_rate=0.05, ecc_ce_rate=0.05)
        server = InferenceServer(
            [TenantConfig("a", "resnet50", groups=2, max_batch=2)],
            obs=obs,
            fault_plan=plan,
            measurement_fault_plan=plan,
        )
        requests = generate_trace(
            [TrafficPattern("a", 200.0)], duration_s=0.02, seed=0
        )
        server.run(requests)
        assert {"serving", "runtime", "sim", "fault"} <= obs.tracer.layers()
        measure = next(
            span for span in obs.tracer.spans
            if span.name.startswith("measure:")
        )
        # admission-side measurement span roots the cross-layer trace
        for layer in ("runtime", "sim", "fault"):
            joined = [
                span for span in obs.tracer.spans_in(layer)
                if span.trace_id == measure.trace_id
            ]
            assert joined, f"no {layer} spans joined the serving trace"

    def test_request_accounting_mirrors_reports(self):
        obs = Observability()
        server = InferenceServer(
            [TenantConfig("a", "resnet50", groups=2)],
            service_times_ns={"a": 1e6},
            obs=obs,
        )
        requests = generate_trace(
            [TrafficPattern("a", 500.0)], duration_s=0.02, seed=1
        )
        reports = server.run(requests)
        counted = obs.metrics.get("serving_requests_total")
        assert counted.value(tenant="a", status="ok") == reports["a"].completed
        latency = obs.metrics.get("serving_request_latency_ms")
        assert latency.series(tenant="a").count == reports["a"].completed

    def test_serving_numbers_identical_with_obs(self):
        def run(obs):
            server = InferenceServer(
                [TenantConfig("a", "resnet50", groups=2, max_batch=4)],
                service_times_ns={"a": 1e6},
                obs=obs,
            )
            requests = generate_trace(
                [TrafficPattern("a", 800.0)], duration_s=0.02, seed=2
            )
            return run_reports(server, requests)

        def run_reports(server, requests):
            reports = server.run(requests)
            return {
                name: (r.completed, r.p99_ms, r.mean_batch)
                for name, r in reports.items()
            }

        assert run(None) == run(Observability())


class TestCli:
    def test_profile_prints_category_and_engine_tables(self, capsys):
        assert main(["profile", "resnet50", "--groups", "3"]) == 0
        out = capsys.readouterr().out
        assert "category" in out and "conv" in out
        assert "engine" in out and "core" in out and "dma" in out

    def test_profile_unknown_model(self, capsys):
        assert main(["profile", "alexnet"]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_trace_writes_whole_stack_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(
            ["trace", "resnet50", "-o", str(path), "--duration", "0.02"]
        ) == 0
        document = json.loads(path.read_text())
        processes = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["name"] == "process_name"
        }
        assert {
            "serving (InferenceServer)", "runtime (Device/Executor)",
            "DTU 2.0 sim", "fault injection",
        } <= processes
        slices_by_pid = {
            event["pid"]
            for event in document["traceEvents"]
            if event["ph"] == "X"
        }
        # spans (not just metadata) on serving, runtime, sim and fault rows
        assert len(slices_by_pid) >= 4
