"""Device-label cardinality cap (`repro.obs.labels`).

At fleet scale, per-device metric labels and span tracks explode
registry cardinality. The cap admits the first N distinct device ids
per hub and collapses the rest into ``device="other"``; the census is
per-registry so fresh hubs never inherit another run's budget.
"""

import pytest

from repro.obs import (
    DEFAULT_DEVICE_LABEL_CAP,
    DEVICE_LABEL_CAP_ENV_VAR,
    OVERFLOW_DEVICE_LABEL,
    Observability,
    device_label,
    device_label_cap,
)


def test_default_cap(monkeypatch):
    monkeypatch.delenv(DEVICE_LABEL_CAP_ENV_VAR, raising=False)
    assert device_label_cap() == DEFAULT_DEVICE_LABEL_CAP


def test_env_override(monkeypatch):
    monkeypatch.setenv(DEVICE_LABEL_CAP_ENV_VAR, "3")
    assert device_label_cap() == 3


def test_non_integer_cap_rejected(monkeypatch):
    monkeypatch.setenv(DEVICE_LABEL_CAP_ENV_VAR, "lots")
    with pytest.raises(ValueError, match=DEVICE_LABEL_CAP_ENV_VAR):
        device_label_cap()


def test_first_cap_ids_keep_identity_later_collapse(monkeypatch):
    monkeypatch.setenv(DEVICE_LABEL_CAP_ENV_VAR, "2")
    obs = Observability()
    assert device_label(obs, "i20-0") == "i20-0"
    assert device_label(obs, "i20-1") == "i20-1"
    assert device_label(obs, "i20-2") == OVERFLOW_DEVICE_LABEL
    assert device_label(obs, "i20-3") == OVERFLOW_DEVICE_LABEL
    # admitted ids stay admitted for the hub's lifetime
    assert device_label(obs, "i20-0") == "i20-0"
    assert device_label(obs, "i20-1") == "i20-1"


def test_cap_below_one_disables(monkeypatch):
    monkeypatch.setenv(DEVICE_LABEL_CAP_ENV_VAR, "0")
    obs = Observability()
    for i in range(200):
        assert device_label(obs, f"d{i}") == f"d{i}"


def test_census_is_per_registry(monkeypatch):
    monkeypatch.setenv(DEVICE_LABEL_CAP_ENV_VAR, "1")
    first, second = Observability(), Observability()
    assert device_label(first, "a") == "a"
    assert device_label(first, "b") == OVERFLOW_DEVICE_LABEL
    # a fresh hub starts with a fresh budget
    assert device_label(second, "b") == "b"
    assert device_label(second, "a") == OVERFLOW_DEVICE_LABEL


def test_launch_counters_collapse_past_the_cap(monkeypatch):
    from repro import Device, build_model

    monkeypatch.setenv(DEVICE_LABEL_CAP_ENV_VAR, "2")
    obs = Observability()
    model = build_model("resnet50")
    for index in range(4):
        device = Device.open("i20", obs=obs, device_id=f"i20-{index}")
        device.launch(device.compile(model, batch=1))
    devices = {}
    for metric in obs.metrics.collect():
        if metric.name != "runtime_launches_total":
            continue
        for labels, value in metric._values.items():
            label_map = dict(labels)
            if "device" in label_map:
                devices[label_map["device"]] = (
                    devices.get(label_map["device"], 0.0) + value
                )
    assert set(devices) == {"i20-0", "i20-1", OVERFLOW_DEVICE_LABEL}
    # the two capped devices share one overflow bucket
    assert devices[OVERFLOW_DEVICE_LABEL] == 2.0
    # spans follow the same budget: no per-device track past the cap
    tracks = {
        span.track for span in obs.tracer.spans
        if span.track.startswith("device.")
    }
    assert tracks == {
        "device.i20-0", "device.i20-1", f"device.{OVERFLOW_DEVICE_LABEL}",
    }
