"""Unit tests for the metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value() == 0.0

    def test_inc_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labels_are_independent_series(self):
        counter = Counter("c")
        counter.inc(tenant="a")
        counter.inc(3.0, tenant="b")
        assert counter.value(tenant="a") == 1.0
        assert counter.value(tenant="b") == 3.0
        assert counter.total() == 4.0

    def test_label_order_does_not_matter(self):
        counter = Counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1.0)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value() == 3.0

    def test_labelled_series(self):
        gauge = Gauge("g")
        gauge.set(1.0, tenant="a")
        gauge.set(2.0, tenant="b")
        assert [value for _labels, value in gauge.samples()] == [1.0, 2.0]


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("h", buckets=(10.0, 100.0))
        histogram.observe(5.0)
        histogram.observe(50.0)
        histogram.observe(500.0)
        series = histogram.series()
        assert series.counts == [1, 1, 1]  # <=10, <=100, +Inf
        assert series.count == 3
        assert series.sum == 555.0

    def test_cumulative_counts(self):
        histogram = Histogram("h", buckets=(10.0, 100.0))
        for value in (1.0, 2.0, 50.0):
            histogram.observe(value)
        assert histogram.series().cumulative() == [2, 3, 3]

    def test_mean(self):
        histogram = Histogram("h", buckets=(10.0,))
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.series().mean == 3.0

    def test_empty_series_lookup_is_safe(self):
        histogram = Histogram("h", buckets=(10.0,))
        assert histogram.series(tenant="missing").count == 0

    def test_buckets_sorted(self):
        histogram = Histogram("h", buckets=(100.0, 10.0))
        assert histogram.buckets == (10.0, 100.0)

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_collect_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert [i.name for i in registry.collect()] == ["a", "b"]

    def test_contains_and_len(self):
        registry = MetricsRegistry()
        registry.counter("c")
        assert "c" in registry
        assert "missing" not in registry
        assert len(registry) == 1

    def test_get_missing_is_none(self):
        assert MetricsRegistry().get("nope") is None
