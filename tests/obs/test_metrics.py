"""Unit tests for the metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSeries,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value() == 0.0

    def test_inc_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labels_are_independent_series(self):
        counter = Counter("c")
        counter.inc(tenant="a")
        counter.inc(3.0, tenant="b")
        assert counter.value(tenant="a") == 1.0
        assert counter.value(tenant="b") == 3.0
        assert counter.total() == 4.0

    def test_label_order_does_not_matter(self):
        counter = Counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1.0)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value() == 3.0

    def test_labelled_series(self):
        gauge = Gauge("g")
        gauge.set(1.0, tenant="a")
        gauge.set(2.0, tenant="b")
        assert [value for _labels, value in gauge.samples()] == [1.0, 2.0]


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("h", buckets=(10.0, 100.0))
        histogram.observe(5.0)
        histogram.observe(50.0)
        histogram.observe(500.0)
        series = histogram.series()
        assert series.counts == [1, 1, 1]  # <=10, <=100, +Inf
        assert series.count == 3
        assert series.sum == 555.0

    def test_cumulative_counts(self):
        histogram = Histogram("h", buckets=(10.0, 100.0))
        for value in (1.0, 2.0, 50.0):
            histogram.observe(value)
        assert histogram.series().cumulative() == [2, 3, 3]

    def test_mean(self):
        histogram = Histogram("h", buckets=(10.0,))
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.series().mean == 3.0

    def test_empty_series_lookup_is_safe(self):
        histogram = Histogram("h", buckets=(10.0,))
        assert histogram.series(tenant="missing").count == 0

    def test_buckets_sorted(self):
        histogram = Histogram("h", buckets=(100.0, 10.0))
        assert histogram.buckets == (10.0, 100.0)

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_collect_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert [i.name for i in registry.collect()] == ["a", "b"]

    def test_contains_and_len(self):
        registry = MetricsRegistry()
        registry.counter("c")
        assert "c" in registry
        assert "missing" not in registry
        assert len(registry) == 1

    def test_get_missing_is_none(self):
        assert MetricsRegistry().get("nope") is None


class TestHistogramQuantile:
    BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0)

    def _series(self, samples):
        series = HistogramSeries(self.BUCKETS)
        for value in samples:
            series.observe(value)
        return series

    @staticmethod
    def _exact(samples, q):
        """The exact q-quantile of the sorted samples (ceil-rank rule)."""
        ordered = sorted(samples)
        rank = max(1, int(-(-q * len(ordered) // 1)))  # ceil(q * n)
        return ordered[rank - 1]

    def test_empty_series_reports_zero(self):
        assert HistogramSeries(self.BUCKETS).quantile(0.99) == 0.0

    def test_quantile_validates_range(self):
        series = self._series([1.0])
        with pytest.raises(ValueError):
            series.quantile(-0.1)
        with pytest.raises(ValueError):
            series.quantile(1.1)

    def test_single_sample_interpolates_inside_its_bucket(self):
        # One sample at 3.0 lands in (2, 4]; any quantile interpolates
        # within that bucket's bounds.
        series = self._series([3.0])
        assert 2.0 <= series.quantile(0.5) <= 4.0
        assert 2.0 <= series.quantile(0.99) <= 4.0

    def test_overflow_bucket_clamps_to_last_finite_bound(self):
        series = self._series([100.0, 200.0, 300.0])
        assert series.quantile(0.99) == self.BUCKETS[-1]

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_estimate_within_one_bucket_of_exact(self, q):
        # The bucket estimate can never be more than one bucket away
        # from the exact sorted-sample quantile.
        samples = [0.5, 1.5, 1.7, 2.5, 3.0, 3.5, 5.0, 6.0, 7.5, 12.0]
        series = self._series(samples)
        exact = self._exact(samples, q)
        estimate = series.quantile(q)
        # Find exact's bucket bounds; the estimate must fall inside them.
        lower, upper = 0.0, self.BUCKETS[0]
        for index, edge in enumerate(self.BUCKETS):
            if exact <= edge:
                lower = self.BUCKETS[index - 1] if index else 0.0
                upper = edge
                break
        assert lower <= estimate <= upper

    def test_monotone_in_q(self):
        samples = [0.3, 0.9, 1.1, 2.2, 3.3, 4.4, 6.6, 9.9, 15.0]
        series = self._series(samples)
        quantiles = [series.quantile(q / 100) for q in range(0, 101, 5)]
        assert quantiles == sorted(quantiles)

    def test_uniform_samples_median_close_to_exact(self):
        # 160 evenly spread samples in (0, 16]: every bucket is well
        # populated, so interpolation lands near the true quantile.
        samples = [0.1 * i for i in range(1, 161)]
        series = self._series(samples)
        exact = self._exact(samples, 0.5)
        assert abs(series.quantile(0.5) - exact) <= 0.5
