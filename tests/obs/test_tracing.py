"""Unit tests for the span tracer."""

import pytest

from repro.obs.tracing import TraceContext, Tracer


class TestSpans:
    def test_add_span_returns_context(self):
        tracer = Tracer()
        context = tracer.add_span("op", layer="runtime", start_ns=0.0, end_ns=10.0)
        assert isinstance(context, TraceContext)
        assert tracer.spans[0].duration_ns == 10.0

    def test_root_spans_get_distinct_traces(self):
        tracer = Tracer()
        a = tracer.add_span("a", layer="runtime", start_ns=0.0, end_ns=1.0)
        b = tracer.add_span("b", layer="runtime", start_ns=0.0, end_ns=1.0)
        assert a.trace_id != b.trace_id

    def test_children_join_parent_trace(self):
        tracer = Tracer()
        parent = tracer.add_span("p", layer="serving", start_ns=0.0, end_ns=9.0)
        child = tracer.add_span(
            "c", layer="runtime", start_ns=1.0, end_ns=2.0, parent=parent
        )
        assert child.trace_id == parent.trace_id
        assert tracer.spans[-1].parent_id == parent.span_id

    def test_children_of_query(self):
        tracer = Tracer()
        parent = tracer.add_span("p", layer="serving", start_ns=0.0, end_ns=9.0)
        tracer.add_span("c1", layer="runtime", start_ns=1.0, end_ns=2.0, parent=parent)
        tracer.add_span("c2", layer="runtime", start_ns=2.0, end_ns=3.0, parent=parent)
        assert [span.name for span in tracer.children_of(parent)] == ["c1", "c2"]

    def test_begin_context_usable_before_end(self):
        tracer = Tracer()
        handle = tracer.begin("open", layer="runtime", start_ns=0.0)
        child = tracer.add_span(
            "child", layer="sim", start_ns=1.0, end_ns=2.0, parent=handle.context
        )
        handle.end(5.0, status="ok")
        assert child.trace_id == handle.context.trace_id
        finished = [span for span in tracer.spans if span.name == "open"]
        assert finished[0].end_ns == 5.0
        assert finished[0].args["status"] == "ok"

    def test_double_end_rejected(self):
        handle = Tracer().begin("s", layer="runtime", start_ns=0.0)
        handle.end(1.0)
        with pytest.raises(ValueError):
            handle.end(2.0)

    def test_backwards_span_rejected(self):
        handle = Tracer().begin("s", layer="runtime", start_ns=10.0)
        with pytest.raises(ValueError):
            handle.end(5.0)

    def test_nan_times_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.begin("s", layer="runtime", start_ns=float("nan"))
        with pytest.raises(ValueError):
            tracer.add_event("e", layer="fault", time_ns=float("nan"))

    def test_track_defaults_to_layer(self):
        tracer = Tracer()
        tracer.add_span("s", layer="runtime", start_ns=0.0, end_ns=1.0)
        assert tracer.spans[0].track == "runtime"


class TestEventsAndSamples:
    def test_events_recorded(self):
        tracer = Tracer()
        tracer.add_event("shed", layer="serving", time_ns=5.0, tenant="a")
        assert tracer.events[0].args == {"tenant": "a"}

    def test_counter_samples_recorded(self):
        tracer = Tracer()
        tracer.add_counter_sample("power", layer="power", time_ns=1.0, watts=70.0)
        assert tracer.counter_samples[0].values == {"watts": 70.0}

    def test_layers_union(self):
        tracer = Tracer()
        tracer.add_span("s", layer="runtime", start_ns=0.0, end_ns=1.0)
        tracer.add_event("e", layer="fault", time_ns=0.0)
        tracer.add_counter_sample("c", layer="power", time_ns=0.0, watts=1.0)
        assert tracer.layers() == {"runtime", "fault", "power"}

    def test_spans_in_filters_by_layer(self):
        tracer = Tracer()
        tracer.add_span("a", layer="sim", start_ns=0.0, end_ns=1.0)
        tracer.add_span("b", layer="runtime", start_ns=0.0, end_ns=1.0)
        assert [span.name for span in tracer.spans_in("sim")] == ["a"]
