"""Unit tests for device specs (Table IV) and the roofline model."""

import pytest

from repro.compiler.kernel import Kernel, KernelCost
from repro.core.datatypes import DType
from repro.perfmodel.calibration import calibration
from repro.perfmodel.devices import (
    ALL_DEVICES,
    CLOUDBLAZER_I10,
    CLOUDBLAZER_I20,
    NVIDIA_A10,
    NVIDIA_T4,
    device,
)
from repro.perfmodel.roofline import estimate_kernel, kernel_memory_bytes

MB = 1 << 20


class TestTable4:
    def test_i20_matches_table1(self):
        assert CLOUDBLAZER_I20.fp32_tflops == 32.0
        assert CLOUDBLAZER_I20.fp16_tflops == 128.0
        assert CLOUDBLAZER_I20.int8_tops == 256.0
        assert CLOUDBLAZER_I20.bandwidth_gbps == 819.0
        assert CLOUDBLAZER_I20.tdp_watts == 150.0

    def test_i10_row(self):
        assert CLOUDBLAZER_I10.fp32_tflops == 20.0
        assert CLOUDBLAZER_I10.fp16_tflops == 80.0
        assert CLOUDBLAZER_I10.int8_tops == 80.0
        assert CLOUDBLAZER_I10.bandwidth_gbps == 512.0

    def test_t4_row(self):
        assert NVIDIA_T4.fp32_tflops == 8.1
        assert NVIDIA_T4.fp16_tflops == 65.0
        assert NVIDIA_T4.int8_tops == 130.0
        assert NVIDIA_T4.tdp_watts == 70.0
        assert NVIDIA_T4.technology_nm == 12

    def test_a10_row(self):
        assert NVIDIA_A10.fp32_tflops == 31.2
        assert NVIDIA_A10.fp16_tflops == 125.0
        assert NVIDIA_A10.memory_gb == 24
        assert NVIDIA_A10.technology_nm == 7

    def test_lookup_by_short_name(self):
        assert device("i20") is CLOUDBLAZER_I20
        assert device("T4") is NVIDIA_T4
        with pytest.raises(KeyError):
            device("h100")

    def test_all_devices_has_four(self):
        assert len(ALL_DEVICES) == 4

    def test_power_efficiency_metric(self):
        # Fig. 14(b): T4's FP16 perf/TDP beats everyone
        fp16_eff = {d.name: d.power_efficiency(DType.FP16) for d in ALL_DEVICES}
        assert max(fp16_eff, key=fp16_eff.get) == "Nvidia T4"
        # but i20 wins FP32 perf/TDP
        fp32_eff = {d.name: d.power_efficiency(DType.FP32) for d in ALL_DEVICES}
        assert max(fp32_eff, key=fp32_eff.get) == "Cloudblazer i20"


def _kernel(flops=1e9, inputs=4 * MB, outputs=2 * MB, weights=1 * MB,
            internal=0, category="conv", sparsity=0.0):
    return Kernel(
        name="k",
        category=category,
        dtype=DType.FP16,
        cost=KernelCost(
            flops=flops, input_bytes=inputs, output_bytes=outputs,
            weight_bytes=weights, internal_bytes=internal,
        ),
        code_bytes=8192,
        sparsity=sparsity,
    )


class TestRoofline:
    def test_time_is_max_of_compute_and_memory(self):
        estimate = estimate_kernel(_kernel(), CLOUDBLAZER_I20, calibration("i20"))
        assert estimate.time_ns == pytest.approx(
            max(estimate.compute_ns, estimate.memory_ns) + estimate.overhead_ns
        )

    def test_compute_bound_classification(self):
        estimate = estimate_kernel(
            _kernel(flops=1e12, inputs=1 * MB, outputs=1 * MB, weights=0),
            CLOUDBLAZER_I20,
            calibration("i20"),
        )
        assert estimate.bound == "compute"

    def test_memory_bound_classification(self):
        estimate = estimate_kernel(
            _kernel(flops=1e6, inputs=64 * MB), CLOUDBLAZER_I20, calibration("i20")
        )
        assert estimate.bound == "memory"

    def test_unfused_traffic_charged_by_fusion_effectiveness(self):
        kernel = _kernel(internal=10 * MB)
        i20_bytes = kernel_memory_bytes(kernel, calibration("i20"))
        t4_bytes = kernel_memory_bytes(kernel, calibration("t4"))
        assert t4_bytes > i20_bytes  # weaker fusion -> more traffic

    def test_sparse_dma_reduces_traffic(self):
        kernel = _kernel(sparsity=0.5)
        dense = kernel_memory_bytes(kernel, calibration("i20"), sparse_dma=False)
        sparse = kernel_memory_bytes(kernel, calibration("i20"), sparse_dma=True)
        assert sparse < dense

    def test_sparse_never_expands(self):
        kernel = _kernel(sparsity=0.01)  # barely sparse: mask overhead bites
        dense = kernel_memory_bytes(kernel, calibration("i20"), sparse_dma=False)
        sparse = kernel_memory_bytes(kernel, calibration("i20"), sparse_dma=True)
        assert sparse <= dense

    def test_tensorization_utilization_slows_compute(self):
        fast = estimate_kernel(
            _kernel(flops=1e12), CLOUDBLAZER_I20, calibration("i20"),
            tensorization_utilization=1.0,
        )
        slow = estimate_kernel(
            _kernel(flops=1e12), CLOUDBLAZER_I20, calibration("i20"),
            tensorization_utilization=0.25,
        )
        assert slow.compute_ns == pytest.approx(4 * fast.compute_ns)

    def test_batch_scale_speeds_compute(self):
        base = estimate_kernel(
            _kernel(flops=1e12), NVIDIA_A10, calibration("a10"), batch_scale=1.0
        )
        batched = estimate_kernel(
            _kernel(flops=1e12), NVIDIA_A10, calibration("a10"), batch_scale=1.5
        )
        assert batched.compute_ns < base.compute_ns

    def test_zero_flop_kernel_memory_only(self):
        estimate = estimate_kernel(
            _kernel(flops=0, category="layout"), CLOUDBLAZER_I20, calibration("i20")
        )
        assert estimate.compute_ns == 0.0
        assert estimate.memory_ns > 0


class TestCalibration:
    def test_batch_scale_normalized_at_one(self):
        for name in ("i20", "i10", "t4", "a10"):
            assert calibration(name).batch_scale(1) == pytest.approx(1.0)

    def test_batch_scale_monotone(self):
        cal = calibration("i20")
        values = [cal.batch_scale(batch) for batch in (1, 2, 4, 8, 16, 32)]
        assert values == sorted(values)
        assert values[-1] < cal.batch_ceiling + 1e-9

    def test_batch_below_one_rejected(self):
        with pytest.raises(ValueError):
            calibration("i20").batch_scale(0)

    def test_unknown_category_uses_default(self):
        cal = calibration("i20")
        assert cal.category_efficiency("exotic") == cal.compute_efficiency["default"]

    def test_unknown_device_rejected(self):
        with pytest.raises(KeyError):
            calibration("tpu")

    def test_i20_fusion_strongest(self):
        """The Table II story: 4x L1 / 6x L2 buys deeper fusion."""
        assert calibration("i20").fusion_effectiveness > calibration("t4").fusion_effectiveness
        assert calibration("i20").fusion_effectiveness > calibration("a10").fusion_effectiveness
        assert calibration("i10").fusion_effectiveness < calibration("i20").fusion_effectiveness

    def test_i20_bandwidth_efficiency_strongest(self):
        """4-port L2 + affinity allocation sustain more of the HBM peak."""
        for other in ("i10", "t4", "a10"):
            assert (
                calibration("i20").bandwidth_efficiency
                > calibration(other).bandwidth_efficiency
            )
