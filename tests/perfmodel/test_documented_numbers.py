"""Regression lock: EXPERIMENTS.md's committed figures match the code.

If a future change moves the measured numbers materially, this test fails
and points at the doc that must be re-measured — the documentation can
never silently drift from the implementation.
"""

import pytest

from repro.models.zoo import MODEL_NAMES
from repro.perfmodel.latency import geomean, speedup

#: the Fig. 13 table committed in EXPERIMENTS.md (i20/T4, i20/A10)
DOCUMENTED_FIG13 = {
    "yolo_v3": (2.03, 1.08),
    "centernet": (2.70, 1.40),
    "retinaface": (2.69, 1.40),
    "vgg16": (2.33, 1.22),
    "resnet50": (2.33, 1.24),
    "inception_v4": (1.85, 1.03),
    "unet": (1.99, 1.07),
    "srresnet": (5.01, 2.71),
    "bert_large": (1.79, 0.93),
    "conformer": (1.65, 0.94),
}
DOCUMENTED_GEOMEANS = (2.31, 1.24)


@pytest.mark.parametrize("model", MODEL_NAMES)
def test_fig13_rows_match_experiments_md(model):
    documented_t4, documented_a10 = DOCUMENTED_FIG13[model]
    assert speedup(model, "i20", "t4") == pytest.approx(documented_t4, rel=0.15)
    assert speedup(model, "i20", "a10") == pytest.approx(documented_a10, rel=0.15)


def test_geomeans_match_experiments_md():
    vs_t4 = geomean([speedup(m, "i20", "t4") for m in MODEL_NAMES])
    vs_a10 = geomean([speedup(m, "i20", "a10") for m in MODEL_NAMES])
    assert vs_t4 == pytest.approx(DOCUMENTED_GEOMEANS[0], rel=0.08)
    assert vs_a10 == pytest.approx(DOCUMENTED_GEOMEANS[1], rel=0.08)
