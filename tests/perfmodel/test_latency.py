"""Tests for end-to-end latency estimation — the Fig. 13/15 engine."""

import pytest

from repro.core.datatypes import DType
from repro.models.zoo import MODEL_NAMES
from repro.perfmodel.latency import (
    energy_efficiency_ratio,
    estimate_model,
    geomean,
    speedup,
)


class TestEstimates:
    def test_latencies_are_plausible_milliseconds(self):
        """Batch-1 FP16 inference latencies land in the 0.1-50 ms regime."""
        for model in MODEL_NAMES:
            estimate = estimate_model(model, "i20")
            assert 0.05 < estimate.latency_ms < 50.0, model

    def test_kernel_estimates_sum_to_total(self):
        estimate = estimate_model("resnet50", "i20")
        total = sum(kernel.time_ns for kernel in estimate.kernels)
        assert estimate.latency_ns == pytest.approx(total)

    def test_throughput_inverse_of_latency(self):
        estimate = estimate_model("resnet50", "i20", batch=4)
        assert estimate.throughput_samples_per_s == pytest.approx(
            4e9 / estimate.latency_ns
        )

    def test_energy_per_sample(self):
        estimate = estimate_model("resnet50", "i20")
        energy = estimate.energy_per_sample_j(150.0)
        assert energy == pytest.approx(150.0 * estimate.latency_ns * 1e-9)

    def test_batching_improves_throughput(self):
        for device in ("i20", "a10"):
            one = estimate_model("vgg16", device, batch=1)
            eight = estimate_model("vgg16", device, batch=8)
            assert eight.throughput_samples_per_s > one.throughput_samples_per_s

    def test_fp32_slower_than_fp16(self):
        fp16 = estimate_model("resnet50", "i20", dtype=DType.FP16)
        fp32 = estimate_model("resnet50", "i20", dtype=DType.FP32)
        assert fp32.latency_ns > fp16.latency_ns

    def test_speedup_antisymmetric(self):
        ab = speedup("resnet50", "i20", "t4")
        ba = speedup("resnet50", "t4", "i20")
        assert ab == pytest.approx(1.0 / ba)

    def test_energy_ratio_folds_tdp(self):
        perf = speedup("resnet50", "i20", "t4")
        energy = energy_efficiency_ratio("resnet50", "i20", "t4")
        assert energy == pytest.approx(perf * 70.0 / 150.0)

    def test_same_device_ratio_is_one(self):
        assert speedup("unet", "i20", "i20") == pytest.approx(1.0)


class TestGeomean:
    def test_empty(self):
        assert geomean([]) == 0.0

    def test_single(self):
        assert geomean([4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)


class TestPaperShape:
    """The headline structure of Fig. 13 (full check in benchmarks/)."""

    def test_i20_beats_i10_on_every_model(self):
        for model in MODEL_NAMES:
            assert speedup(model, "i20", "i10") > 1.0, model

    def test_a10_beats_t4_on_every_model(self):
        for model in MODEL_NAMES:
            assert speedup(model, "a10", "t4") > 1.0, model

    def test_geomean_bands(self):
        vs_t4 = geomean([speedup(m, "i20", "t4") for m in MODEL_NAMES])
        vs_a10 = geomean([speedup(m, "i20", "a10") for m in MODEL_NAMES])
        assert 1.9 < vs_t4 < 2.7   # paper: 2.22
        assert 1.0 < vs_a10 < 1.4  # paper: 1.16

    def test_srresnet_is_the_biggest_win(self):
        ratios = {m: speedup(m, "i20", "t4") for m in MODEL_NAMES}
        assert max(ratios, key=ratios.get) == "srresnet"
        assert ratios["srresnet"] > 3.5  # paper: 4.34
