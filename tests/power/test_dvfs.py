"""Unit tests for the 4-stage DVFS loop (§IV-F2, Fig. 10)."""

import pytest

from repro.power.dvfs import DvfsController, Observation, WorkloadKind
from repro.power.model import DvfsCurve


def _controller(**kwargs):
    return DvfsController(curve=DvfsCurve(1.0, 1.4), **kwargs)


COMPUTE = Observation(busy_ratio=0.95, dma_stall_ratio=0.02)
BANDWIDTH = Observation(busy_ratio=0.30, dma_stall_ratio=0.60)
BALANCED = Observation(busy_ratio=0.50, dma_stall_ratio=0.10)


def test_observation_validates_ranges():
    with pytest.raises(ValueError):
        Observation(busy_ratio=1.2, dma_stall_ratio=0.0)
    with pytest.raises(ValueError):
        Observation(busy_ratio=0.5, dma_stall_ratio=-0.1)


class TestEvaluation:
    def test_classification(self):
        controller = _controller()
        assert controller.classify(COMPUTE) is WorkloadKind.COMPUTE_BOUND
        assert controller.classify(BANDWIDTH) is WorkloadKind.BANDWIDTH_BOUND
        assert controller.classify(BALANCED) is WorkloadKind.BALANCED

    def test_stall_dominates_busy(self):
        """A busy core stalling on DMA is bandwidth-bound, not compute-bound."""
        controller = _controller()
        both = Observation(busy_ratio=0.9, dma_stall_ratio=0.5)
        assert controller.classify(both) is WorkloadKind.BANDWIDTH_BOUND


class TestDecisionHysteresis:
    def test_boots_at_max(self):
        assert _controller().f_ghz == 1.4

    def test_single_window_does_not_act(self):
        controller = _controller(hysteresis_windows=3)
        controller.update(BANDWIDTH)
        assert controller.f_ghz == 1.4

    def test_sustained_bandwidth_bound_downclocks(self):
        controller = _controller(hysteresis_windows=3)
        for _ in range(3):
            decision = controller.update(BANDWIDTH)
        assert decision.changed and controller.f_ghz == pytest.approx(1.3)

    def test_mixed_kinds_reset_hysteresis(self):
        controller = _controller(hysteresis_windows=3)
        controller.update(BANDWIDTH)
        controller.update(BANDWIDTH)
        controller.update(BALANCED)
        controller.update(BANDWIDTH)
        assert controller.f_ghz == 1.4

    def test_floor_and_ceiling_respected(self):
        controller = _controller(hysteresis_windows=1)
        for _ in range(20):
            controller.update(BANDWIDTH)
        assert controller.f_ghz == pytest.approx(1.0)
        for _ in range(20):
            controller.update(COMPUTE)
        assert controller.f_ghz == pytest.approx(1.4)

    def test_recovers_after_phase_change(self):
        """Fig. 10's closed loop: down in a memory phase, back up after."""
        controller = _controller(hysteresis_windows=2)
        for _ in range(8):
            controller.update(BANDWIDTH)
        low = controller.f_ghz
        for _ in range(8):
            controller.update(COMPUTE)
        assert controller.f_ghz > low


class TestDisabled:
    def test_disabled_holds_max_frequency(self):
        controller = _controller(enabled=False)
        for _ in range(10):
            decision = controller.update(BANDWIDTH)
        assert controller.f_ghz == 1.4
        assert not decision.changed

    def test_disabled_still_classifies(self):
        controller = _controller(enabled=False)
        decision = controller.update(BANDWIDTH)
        assert decision.kind is WorkloadKind.BANDWIDTH_BOUND


class TestPowerCap:
    """Cap interactions: forced steps outrank the Decision stage."""

    def test_cap_clamped_to_envelope(self):
        controller = _controller()
        controller.set_cap(0.8)
        assert controller.cap_ghz == pytest.approx(1.0)
        controller.set_cap(2.0)
        assert controller.cap_ghz == pytest.approx(1.4)
        controller.set_cap(None)
        assert controller.cap_ghz is None

    def test_forced_step_bypasses_hysteresis(self):
        controller = _controller(hysteresis_windows=3)
        controller.set_cap(1.1)
        decision = controller.update(BALANCED)  # a single window suffices
        assert decision.forced and decision.changed
        assert controller.f_ghz == pytest.approx(1.1)

    def test_forced_step_clears_classification_history(self):
        controller = _controller(hysteresis_windows=2)
        controller.update(COMPUTE)  # one window of compute history banked
        controller.set_cap(1.1)
        controller.update(COMPUTE)  # forced step; history resets
        controller.set_cap(None)
        decision = controller.update(COMPUTE)
        # Only one post-reset compute window: hysteresis must hold the clock.
        assert controller.f_ghz == pytest.approx(1.1)
        assert not decision.changed

    def test_step_up_ceiling_is_the_cap(self):
        controller = _controller(hysteresis_windows=1)
        controller.set_cap(1.1)
        for _ in range(10):
            controller.update(COMPUTE)
        assert controller.f_ghz == pytest.approx(1.1)

    def test_lifting_cap_recovers_to_max(self):
        controller = _controller(hysteresis_windows=1)
        controller.set_cap(1.0)
        controller.update(COMPUTE)
        assert controller.f_ghz == pytest.approx(1.0)
        controller.set_cap(None)
        for _ in range(10):
            controller.update(COMPUTE)
        assert controller.f_ghz == pytest.approx(1.4)

    def test_cap_at_or_above_clock_is_not_forced(self):
        controller = _controller(hysteresis_windows=3)
        controller.set_cap(1.4)
        decision = controller.update(BALANCED)
        assert not decision.forced and not decision.changed
        assert controller.f_ghz == pytest.approx(1.4)

    def test_alternating_phases_do_not_oscillate(self):
        """Anti-oscillation: a trace flapping between compute- and
        bandwidth-bound every window never accumulates the consecutive
        same-kind history hysteresis demands, so the clock holds still."""
        controller = _controller(hysteresis_windows=2)
        decisions = [
            controller.update(COMPUTE if i % 2 == 0 else BANDWIDTH)
            for i in range(20)
        ]
        assert not any(decision.changed for decision in decisions)
        assert controller.f_ghz == pytest.approx(1.4)

    def test_alternating_phases_under_cap_hold_at_cap(self):
        controller = _controller(hysteresis_windows=2)
        controller.set_cap(1.2)
        controller.update(COMPUTE)  # the one forced step down to the cap
        decisions = [
            controller.update(BANDWIDTH if i % 2 == 0 else COMPUTE)
            for i in range(20)
        ]
        assert not any(decision.changed for decision in decisions)
        assert controller.f_ghz == pytest.approx(1.2)


class TestAnalysis:
    def test_frequency_profile_counts_windows(self):
        controller = _controller(hysteresis_windows=1)
        for _ in range(4):
            controller.update(BANDWIDTH)
        profile = controller.frequency_profile()
        assert sum(profile.values()) == 4
        assert min(profile) < 1.4

    def test_mean_frequency(self):
        controller = _controller(hysteresis_windows=1)
        assert controller.mean_frequency_ghz() == 1.4
        for _ in range(10):
            controller.update(BANDWIDTH)
        assert 1.0 <= controller.mean_frequency_ghz() < 1.4
