"""Unit tests for power-integrity management (LPME + CPME, §IV-F1, Fig. 9)."""

import pytest

from repro.power.cpme import Cpme, PowerIntegrityError
from repro.power.lpme import Lpme, WindowReport
from repro.power.model import DvfsCurve, UnitPowerModel, UnitPowerParams, dtu2_power_units


def _unit(dynamic=4.0):
    return UnitPowerModel(
        UnitPowerParams("u", static_watts=0.5, dynamic_watts_peak=dynamic),
        DvfsCurve(1.0, 1.4),
    )


class TestLpme:
    def test_under_budget_no_throttle(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=10.0)
        report = lpme.observe(activity=1.0, f_ghz=1.4, window_ns=1000.0)
        assert report.throttle == 0.0

    def test_over_budget_throttles_to_fixpoint(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=2.5)
        report = lpme.observe(activity=1.0, f_ghz=1.4, window_ns=1000.0)
        # allowed dynamic = 2.0 of 4.0 -> half the work shed
        assert report.throttle == pytest.approx(0.5)
        throttled_power = lpme.unit_model.power_watts(
            (1 - report.throttle) * 1.0, 1.4
        )
        assert throttled_power == pytest.approx(2.5)

    def test_budget_below_static_floor_rejected(self):
        with pytest.raises(ValueError):
            Lpme(unit_model=_unit(), budget_watts=0.1)

    def test_borrow_requested_after_m_of_n_starved_windows(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=2.5, borrow_m=3, borrow_n=5)
        requests = [
            lpme.observe(1.0, 1.4, 1000.0).borrow_requested for _ in range(5)
        ]
        assert not any(requests[:2])  # history too short at first
        assert requests[4]

    def test_excess_budget_returned(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=10.0)
        report = lpme.observe(activity=0.1, f_ghz=1.0, window_ns=1000.0)
        assert report.returned_watts > 0
        assert lpme.budget_watts < 10.0
        assert lpme.budget_watts >= lpme.unit_model.min_power_watts()

    def test_grant_raises_budget_and_clears_history(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=2.5)
        for _ in range(5):
            lpme.observe(1.0, 1.4, 1000.0)
        lpme.grant(2.0)
        assert lpme.budget_watts == pytest.approx(4.5)
        assert len(lpme.history) == 0

    def test_negative_grant_rejected(self):
        with pytest.raises(ValueError):
            Lpme(unit_model=_unit(), budget_watts=3.0).grant(-1.0)

    def test_effective_slowdown(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=2.5)
        report = lpme.observe(1.0, 1.4, 1000.0)
        assert lpme.effective_slowdown(report) == pytest.approx(2.0)

    def test_borrow_boundary_exactly_m_of_n(self):
        """Borrow fires at exactly M starved windows of the last N, not M-1.

        With ``_unit()`` and a 2.5 W budget, activity 1.0 at 1.4 GHz
        projects 4.5 W and starves the window (throttle 0.5); activity
        0.45 projects 2.3 W, throttles nothing, and returns nothing
        (keep = 2.3 * 1.25 > 2.5), so the budget and history evolve only
        through the starved/ok pattern under test.
        """
        STARVED, OK = 1.0, 0.45

        def run(pattern):
            lpme = Lpme(
                unit_model=_unit(), budget_watts=2.5, borrow_m=3, borrow_n=5
            )
            return [
                lpme.observe(activity, 1.4, 1000.0).borrow_requested
                for activity in pattern
            ]

        at_m = run([STARVED, STARVED, OK, OK, STARVED])
        assert not any(at_m[:4])  # window 5 completes the history
        assert at_m[4]  # exactly M = 3 of N = 5 starved

        below_m = run([STARVED, STARVED, OK, OK, OK])
        assert not any(below_m)  # M - 1 starved: no request

        rolling = run([STARVED, OK, OK, OK, STARVED, STARVED])
        assert not any(rolling)  # oldest starved window rolled out

    def test_ok_window_between_starved_does_not_return_budget(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=2.5)
        report = lpme.observe(0.45, 1.4, 1000.0)
        assert report.throttle == 0.0
        assert report.returned_watts == 0.0
        assert lpme.budget_watts == 2.5


class TestCpme:
    def test_baseline_budgets_fit_limit(self):
        cpme = Cpme(power_limit_watts=150.0)
        cpme.register_units(dtu2_power_units())
        assert cpme.committed_watts <= 150.0
        assert cpme.reserve_watts > 0

    def test_double_registration_rejected(self):
        cpme = Cpme(power_limit_watts=150.0)
        units = dtu2_power_units()
        cpme.register_units(units)
        with pytest.raises(PowerIntegrityError):
            cpme.register_units(units)

    def test_limit_too_small_rejected(self):
        cpme = Cpme(power_limit_watts=10.0)
        with pytest.raises(PowerIntegrityError):
            cpme.register_units(dtu2_power_units())

    def test_grants_never_exceed_limit(self):
        """The §IV-F1 invariant: total committed budget <= board limit."""
        cpme = Cpme(power_limit_watts=150.0)
        cpme.register_units(dtu2_power_units())
        activities = {name: 1.0 for name in cpme.lpmes}
        frequencies = {}
        for _ in range(50):
            cpme.run_window(activities, frequencies, window_ns=10_000.0)
            assert cpme.committed_watts <= 150.0 + 1e-9

    def test_hot_unit_eventually_unthrottled(self):
        """Budget borrowing relieves a starved engine (Fig. 9)."""
        cpme = Cpme(power_limit_watts=150.0)
        cpme.register_units(dtu2_power_units())
        activities = {f"core{i}": 1.0 for i in range(24)}
        last_reports = None
        for _ in range(30):
            last_reports = cpme.run_window(activities, {}, window_ns=10_000.0)
        core_throttles = [
            report.throttle
            for name, report in last_reports.items()
            if name.startswith("core")
        ]
        assert max(core_throttles) == 0.0
        assert cpme.grants_issued > 0

    def test_oversubscription_denies_grants(self):
        """With everything maxed, the reserve drains and requests get denied,
        yet integrity holds."""
        cpme = Cpme(power_limit_watts=60.0, baseline_fraction=0.30)
        units = {
            f"u{i}": UnitPowerModel(
                UnitPowerParams(f"u{i}", 0.5, 9.5), DvfsCurve(1.0, 1.4)
            )
            for i in range(10)
        }
        cpme.register_units(units)
        activities = {name: 1.0 for name in units}
        for _ in range(30):
            cpme.run_window(activities, {}, 10_000.0)
        assert cpme.grants_denied > 0
        assert cpme.committed_watts <= 60.0 + 1e-9
        assert cpme.reserve_watts < 1.0


def _drift(cpme):
    return cpme.committed_watts + cpme._ledger_reserve - cpme.power_limit_watts


class TestBudgetConservation:
    """The conservation guard: committed + reserve == limit, always.

    The ledger reserve is tracked incrementally across grants, returns and
    re-caps, and mirrored against the recomputed committed sum; any drift
    beyond 1e-9 W means a budget movement was double-counted or lost.
    """

    def test_holds_through_grant_return_cycles(self):
        cpme = Cpme(power_limit_watts=150.0)
        cpme.register_units(dtu2_power_units())
        assert abs(_drift(cpme)) <= 1e-9
        hot = {name: 1.0 for name in cpme.lpmes}
        cold = {name: 0.05 for name in cpme.lpmes}
        for window in range(60):
            # Alternate starvation (borrows) and idleness (returns).
            cpme.run_window(hot if (window // 10) % 2 == 0 else cold, {}, 10_000.0)
            assert abs(_drift(cpme)) <= 1e-9
        assert cpme.grants_issued > 0  # the cycle actually moved budget

    def test_holds_through_recap_cycles(self):
        cpme = Cpme(power_limit_watts=150.0)
        cpme.register_units(dtu2_power_units())
        floor_total = sum(
            lpme.unit_model.min_power_watts() for lpme in cpme.lpmes.values()
        )
        hot = {name: 1.0 for name in cpme.lpmes}
        for limit in (150.0, floor_total + 1.0, 150.0, floor_total + 5.0, 150.0):
            cpme.set_power_limit(limit)
            assert abs(_drift(cpme)) <= 1e-9
            for _ in range(5):
                cpme.run_window(hot, {}, 10_000.0)
                assert abs(_drift(cpme)) <= 1e-9
        assert cpme.recaps == 5

    def test_violation_names_the_offending_unit(self):
        """A corrupted ledger is caught at the next movement, not silently."""
        cpme = Cpme(power_limit_watts=50.0)
        cpme.register_units({"a": _unit(), "b": _unit()})
        cpme._ledger_reserve += 0.5  # simulate lost-update drift
        lpme_a = cpme.lpmes["a"]
        lpme_a.budget_watts -= 0.2  # the LPME's side of a return
        report = WindowReport(
            unit="a",
            activity=0.0,
            projected_watts=0.5,
            budget_watts=lpme_a.budget_watts,
            throttle=0.0,
            borrow_requested=False,
            returned_watts=0.2,
        )
        with pytest.raises(
            PowerIntegrityError, match="grant/return cycle touching a"
        ):
            cpme.handle_reports([report])

    def test_settled_windows_move_nothing(self):
        cpme = Cpme(power_limit_watts=150.0)
        cpme.register_units(dtu2_power_units())
        cpme.run_window({}, {}, 10_000.0)  # idle: boot excess returned
        committed = cpme.committed_watts
        reserve = cpme._ledger_reserve
        for _ in range(5):
            cpme.run_window({}, {}, 10_000.0)  # settled: nothing moves
        assert cpme.committed_watts == committed
        assert cpme._ledger_reserve == reserve
        assert cpme.grants_issued == 0
        assert abs(_drift(cpme)) <= 1e-9


class TestRecap:
    """set_power_limit: the fleet governor's re-cap entry point."""

    def test_tighten_claws_back_proportionally_to_excess(self):
        cpme = Cpme(power_limit_watts=50.0)
        cpme.register_units({"a": _unit(), "b": _unit()})
        cpme.lpmes["a"].grant(1.0)  # unequal budgets above the floors
        floors = {
            name: lpme.unit_model.min_power_watts()
            for name, lpme in cpme.lpmes.items()
        }
        before = {name: lpme.budget_watts for name, lpme in cpme.lpmes.items()}
        need = 1.0
        new_limit = cpme.committed_watts - need
        excess = {name: before[name] - floors[name] for name in before}
        scale = need / sum(excess.values())
        cpme.set_power_limit(new_limit)
        for name, lpme in cpme.lpmes.items():
            assert lpme.budget_watts == pytest.approx(
                before[name] - excess[name] * scale
            )
            assert lpme.budget_watts >= floors[name]
        assert cpme.committed_watts <= new_limit + 1e-9
        assert abs(_drift(cpme)) <= 1e-9

    def test_tighten_to_floor_leaves_floors_intact(self):
        cpme = Cpme(power_limit_watts=50.0)
        cpme.register_units({"a": _unit(), "b": _unit()})
        floor_total = sum(
            lpme.unit_model.min_power_watts() for lpme in cpme.lpmes.values()
        )
        cpme.set_power_limit(floor_total)
        for lpme in cpme.lpmes.values():
            assert lpme.budget_watts == pytest.approx(
                lpme.unit_model.min_power_watts()
            )

    def test_below_floor_refused_names_largest_floor_unit(self):
        cpme = Cpme(power_limit_watts=50.0)
        cpme.register_units(
            {
                "big": UnitPowerModel(
                    UnitPowerParams("big", static_watts=2.0, dynamic_watts_peak=4.0),
                    DvfsCurve(1.0, 1.4),
                ),
                "small": _unit(),
            }
        )
        with pytest.raises(PowerIntegrityError, match="big"):
            cpme.set_power_limit(1.0)
        assert cpme.power_limit_watts == 50.0  # refusal leaves state intact

    def test_raise_grows_reserve_only(self):
        cpme = Cpme(power_limit_watts=50.0)
        cpme.register_units({"a": _unit(), "b": _unit()})
        budgets = {name: lpme.budget_watts for name, lpme in cpme.lpmes.items()}
        reserve = cpme.reserve_watts
        cpme.set_power_limit(60.0)
        assert cpme.reserve_watts == pytest.approx(reserve + 10.0)
        for name, lpme in cpme.lpmes.items():
            assert lpme.budget_watts == budgets[name]
        assert cpme.recaps == 1
        assert abs(_drift(cpme)) <= 1e-9

    def test_negative_limit_rejected(self):
        cpme = Cpme(power_limit_watts=50.0)
        cpme.register_units({"a": _unit()})
        with pytest.raises(PowerIntegrityError):
            cpme.set_power_limit(-1.0)

    def test_returned_budget_reabsorbed_before_grants(self):
        """Reabsorption ordering: returns credit the reserve before borrow
        requests are served, so a grant can be funded by budget returned in
        the very same window even when the reserve started empty —
        regardless of report order."""
        cpme = Cpme(power_limit_watts=50.0)
        cpme.register_units({"a": _unit(), "b": _unit()})
        cpme.set_power_limit(cpme.committed_watts)  # drain the reserve
        assert cpme.reserve_watts == pytest.approx(0.0)
        lpme_a = cpme.lpmes["a"]
        lpme_b = cpme.lpmes["b"]
        returned = 0.4
        lpme_a.budget_watts -= returned  # the LPME's side of the return
        reports = [
            # The borrower is listed *first*: ordering must not matter.
            WindowReport(
                unit="b",
                activity=1.0,
                projected_watts=4.5,
                budget_watts=lpme_b.budget_watts,
                throttle=0.5,
                borrow_requested=True,
                returned_watts=0.0,
            ),
            WindowReport(
                unit="a",
                activity=0.0,
                projected_watts=0.5,
                budget_watts=lpme_a.budget_watts,
                throttle=0.0,
                borrow_requested=False,
                returned_watts=returned,
            ),
        ]
        grants = cpme.handle_reports(reports)
        assert grants == {"b": pytest.approx(returned)}
        assert cpme.grants_denied == 0
        assert cpme.committed_watts <= cpme.power_limit_watts + 1e-9
        assert abs(_drift(cpme)) <= 1e-9
