"""Unit tests for power-integrity management (LPME + CPME, §IV-F1, Fig. 9)."""

import pytest

from repro.power.cpme import Cpme, PowerIntegrityError
from repro.power.lpme import Lpme
from repro.power.model import DvfsCurve, UnitPowerModel, UnitPowerParams, dtu2_power_units


def _unit(dynamic=4.0):
    return UnitPowerModel(
        UnitPowerParams("u", static_watts=0.5, dynamic_watts_peak=dynamic),
        DvfsCurve(1.0, 1.4),
    )


class TestLpme:
    def test_under_budget_no_throttle(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=10.0)
        report = lpme.observe(activity=1.0, f_ghz=1.4, window_ns=1000.0)
        assert report.throttle == 0.0

    def test_over_budget_throttles_to_fixpoint(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=2.5)
        report = lpme.observe(activity=1.0, f_ghz=1.4, window_ns=1000.0)
        # allowed dynamic = 2.0 of 4.0 -> half the work shed
        assert report.throttle == pytest.approx(0.5)
        throttled_power = lpme.unit_model.power_watts(
            (1 - report.throttle) * 1.0, 1.4
        )
        assert throttled_power == pytest.approx(2.5)

    def test_budget_below_static_floor_rejected(self):
        with pytest.raises(ValueError):
            Lpme(unit_model=_unit(), budget_watts=0.1)

    def test_borrow_requested_after_m_of_n_starved_windows(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=2.5, borrow_m=3, borrow_n=5)
        requests = [
            lpme.observe(1.0, 1.4, 1000.0).borrow_requested for _ in range(5)
        ]
        assert not any(requests[:2])  # history too short at first
        assert requests[4]

    def test_excess_budget_returned(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=10.0)
        report = lpme.observe(activity=0.1, f_ghz=1.0, window_ns=1000.0)
        assert report.returned_watts > 0
        assert lpme.budget_watts < 10.0
        assert lpme.budget_watts >= lpme.unit_model.min_power_watts()

    def test_grant_raises_budget_and_clears_history(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=2.5)
        for _ in range(5):
            lpme.observe(1.0, 1.4, 1000.0)
        lpme.grant(2.0)
        assert lpme.budget_watts == pytest.approx(4.5)
        assert len(lpme.history) == 0

    def test_negative_grant_rejected(self):
        with pytest.raises(ValueError):
            Lpme(unit_model=_unit(), budget_watts=3.0).grant(-1.0)

    def test_effective_slowdown(self):
        lpme = Lpme(unit_model=_unit(), budget_watts=2.5)
        report = lpme.observe(1.0, 1.4, 1000.0)
        assert lpme.effective_slowdown(report) == pytest.approx(2.0)


class TestCpme:
    def test_baseline_budgets_fit_limit(self):
        cpme = Cpme(power_limit_watts=150.0)
        cpme.register_units(dtu2_power_units())
        assert cpme.committed_watts <= 150.0
        assert cpme.reserve_watts > 0

    def test_double_registration_rejected(self):
        cpme = Cpme(power_limit_watts=150.0)
        units = dtu2_power_units()
        cpme.register_units(units)
        with pytest.raises(PowerIntegrityError):
            cpme.register_units(units)

    def test_limit_too_small_rejected(self):
        cpme = Cpme(power_limit_watts=10.0)
        with pytest.raises(PowerIntegrityError):
            cpme.register_units(dtu2_power_units())

    def test_grants_never_exceed_limit(self):
        """The §IV-F1 invariant: total committed budget <= board limit."""
        cpme = Cpme(power_limit_watts=150.0)
        cpme.register_units(dtu2_power_units())
        activities = {name: 1.0 for name in cpme.lpmes}
        frequencies = {}
        for _ in range(50):
            cpme.run_window(activities, frequencies, window_ns=10_000.0)
            assert cpme.committed_watts <= 150.0 + 1e-9

    def test_hot_unit_eventually_unthrottled(self):
        """Budget borrowing relieves a starved engine (Fig. 9)."""
        cpme = Cpme(power_limit_watts=150.0)
        cpme.register_units(dtu2_power_units())
        activities = {f"core{i}": 1.0 for i in range(24)}
        last_reports = None
        for _ in range(30):
            last_reports = cpme.run_window(activities, {}, window_ns=10_000.0)
        core_throttles = [
            report.throttle
            for name, report in last_reports.items()
            if name.startswith("core")
        ]
        assert max(core_throttles) == 0.0
        assert cpme.grants_issued > 0

    def test_oversubscription_denies_grants(self):
        """With everything maxed, the reserve drains and requests get denied,
        yet integrity holds."""
        cpme = Cpme(power_limit_watts=60.0, baseline_fraction=0.30)
        units = {
            f"u{i}": UnitPowerModel(
                UnitPowerParams(f"u{i}", 0.5, 9.5), DvfsCurve(1.0, 1.4)
            )
            for i in range(10)
        }
        cpme.register_units(units)
        activities = {name: 1.0 for name in units}
        for _ in range(30):
            cpme.run_window(activities, {}, 10_000.0)
        assert cpme.grants_denied > 0
        assert cpme.committed_watts <= 60.0 + 1e-9
        assert cpme.reserve_watts < 1.0
