"""Unit tests for the power model (DVFS curve, unit power, chip budget)."""

import pytest

from repro.power.model import (
    DvfsCurve,
    UnitPowerModel,
    UnitPowerParams,
    chip_power_units,
    chip_power_watts,
    dtu2_power_units,
)


class TestDvfsCurve:
    def test_clamp(self):
        curve = DvfsCurve(1.0, 1.4)
        assert curve.clamp(0.5) == 1.0
        assert curve.clamp(2.0) == 1.4
        assert curve.clamp(1.2) == 1.2

    def test_voltage_interpolates(self):
        curve = DvfsCurve(1.0, 1.4, v_min=0.7, v_max=0.9)
        assert curve.voltage(1.0) == pytest.approx(0.7)
        assert curve.voltage(1.4) == pytest.approx(0.9)
        assert curve.voltage(1.2) == pytest.approx(0.8)

    def test_flat_curve_voltage(self):
        curve = DvfsCurve(1.0, 1.0)
        assert curve.voltage(1.0) == curve.v_max

    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError):
            DvfsCurve(1.4, 1.0)
        with pytest.raises(ValueError):
            DvfsCurve(1.0, 1.4, v_min=0.9, v_max=0.7)


class TestUnitPower:
    def _unit(self):
        return UnitPowerModel(
            UnitPowerParams("core", static_watts=0.5, dynamic_watts_peak=4.0),
            DvfsCurve(1.0, 1.4),
        )

    def test_idle_draws_static_only(self):
        assert self._unit().power_watts(0.0) == pytest.approx(0.5)

    def test_full_power_at_max(self):
        assert self._unit().max_power_watts() == pytest.approx(4.5)

    def test_power_superlinear_in_frequency(self):
        """Dynamic power scales f * V^2: the DVFS energy-saving premise."""
        unit = self._unit()
        low = unit.power_watts(1.0, 1.0) - 0.5
        high = unit.power_watts(1.0, 1.4) - 0.5
        assert high / low > 1.4  # more than linear in f

    def test_activity_bounds_enforced(self):
        with pytest.raises(ValueError):
            self._unit().power_watts(1.2)

    def test_energy_integrates_power(self):
        unit = self._unit()
        energy = unit.energy_joules(1.0, 1.4, duration_ns=1e9)
        assert energy == pytest.approx(4.5)


class TestChipBudget:
    def test_dtu2_full_chip_near_tdp(self):
        """All-busy chip at f_max must sit at the 150 W board TDP."""
        units = dtu2_power_units()
        total = chip_power_watts(units, {name: 1.0 for name in units})
        assert total == pytest.approx(150.0, rel=0.01)

    def test_idle_chip_draws_leakage_only(self):
        units = dtu2_power_units()
        idle = chip_power_watts(units, {})
        assert 0 < idle < 40.0

    def test_unit_count_matches_topology(self):
        units = dtu2_power_units()
        cores = [name for name in units if name.startswith("core")]
        dmas = [name for name in units if name.startswith("dma")]
        assert len(cores) == 24 and len(dmas) == 6
        assert "hbm" in units and "fabric" in units

    def test_generic_builder_respects_tdp(self):
        units = chip_power_units(cores=32, dma_engines=4, tdp_watts=150.0)
        total = chip_power_watts(units, {name: 1.0 for name in units})
        assert total == pytest.approx(150.0, rel=0.01)

    def test_tdp_below_fixed_blocks_rejected(self):
        with pytest.raises(ValueError):
            chip_power_units(cores=8, dma_engines=2, tdp_watts=20.0)

    def test_downclocking_cores_saves_power(self):
        units = dtu2_power_units()
        busy = {name: 1.0 for name in units}
        at_max = chip_power_watts(units, busy)
        at_min = chip_power_watts(
            units, busy, {name: 1.0 for name in units if name.startswith("core")}
        )
        assert at_min < at_max
