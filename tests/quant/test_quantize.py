"""Tests for INT8 post-training quantization (§VI-A accuracy methodology)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.reference import EvaluationError, ReferenceExecutor
from repro.quant import (
    CalibrationTable,
    QuantizationScale,
    QuantizedExecutor,
    calibrate,
    verify_accuracy,
    weight_compression_bytes,
)


def _small_cnn():
    builder = GraphBuilder("qnet")
    x = builder.input("x", (4, 3, 16, 16))
    y = builder.conv2d(x, 16, 3, pad=1)
    y = builder.relu(y)
    y = builder.conv2d(y, 16, 3, pad=1)
    y = builder.relu(y)
    y = builder.global_avg_pool(y)
    y = builder.flatten(y)
    y = builder.dense(y, 10)
    y = builder.softmax(y)
    return builder.finish([y])


def _batches(count, seed=0, shape=(4, 3, 16, 16)):
    rng = np.random.default_rng(seed)
    return [{"x": rng.normal(size=shape)} for _ in range(count)]


class TestScale:
    def test_roundtrip_within_one_step(self):
        scale = QuantizationScale("t", scale=0.1)
        values = np.array([-3.0, 0.0, 0.05, 1.23, 12.7])
        restored = scale.fake_quantize(values)
        assert np.max(np.abs(restored - values)) <= 0.05 + 1e-12

    def test_saturates_at_127_levels(self):
        scale = QuantizationScale("t", scale=1.0)
        assert scale.quantize(np.array([1e9]))[0] == 127
        assert scale.quantize(np.array([-1e9]))[0] == -127

    def test_zero_scale_maps_to_zero(self):
        scale = QuantizationScale("t", scale=0.0)
        assert np.all(scale.fake_quantize(np.ones(4)) == 0.0)


class TestCalibration:
    def test_observes_every_quantized_boundary(self):
        graph = _small_cnn()
        table = calibrate(graph, _batches(2))
        # 2 convs + 1 dense, each with data + weight + bias inputs
        assert len(table.abs_max) >= 6
        assert table.samples == 2

    def test_abs_max_is_running_maximum(self):
        table = CalibrationTable()
        table.observe("t", np.array([1.0]))
        table.observe("t", np.array([-5.0]))
        table.observe("t", np.array([2.0]))
        assert table.abs_max["t"] == 5.0

    def test_scale_for_unobserved_raises(self):
        with pytest.raises(EvaluationError):
            CalibrationTable().scale_for("ghost")

    def test_empty_batches_rejected(self):
        with pytest.raises(EvaluationError):
            calibrate(_small_cnn(), [])


class TestAccuracy:
    def test_int8_tracks_fp_reference(self):
        """The §VI-A methodology: INT8 deviation stays within budget."""
        graph = _small_cnn()
        table = calibrate(graph, _batches(4))
        report = verify_accuracy(graph, table, _batches(2, seed=99))
        assert report.mean_relative_error < 0.05
        assert report.top1_agreement >= 0.9

    def test_more_calibration_data_never_catastrophic(self):
        graph = _small_cnn()
        short = calibrate(graph, _batches(1))
        long = calibrate(graph, _batches(8))
        held_out = _batches(2, seed=123)
        error_short = verify_accuracy(graph, short, held_out).mean_relative_error
        error_long = verify_accuracy(graph, long, held_out).mean_relative_error
        assert error_long < 0.1 and error_short < 0.2

    def test_quantized_executor_counts_tensors(self):
        graph = _small_cnn()
        table = calibrate(graph, _batches(1))
        executor = QuantizedExecutor(graph, table)
        executor.run(**_batches(1, seed=7)[0])
        assert executor.quantized_tensors >= 6

    def test_quantized_output_close_but_not_identical(self):
        graph = _small_cnn()
        table = calibrate(graph, _batches(2))
        batch = _batches(1, seed=5)[0]
        fp_out = ReferenceExecutor(graph).run(**batch)
        q_out = QuantizedExecutor(graph, table).run(**batch)
        key = graph.outputs[0]
        assert not np.array_equal(fp_out[key], q_out[key])
        assert np.allclose(fp_out[key], q_out[key], atol=0.05)

    def test_precision_difference_percent(self):
        graph = _small_cnn()
        table = calibrate(graph, _batches(4))
        report = verify_accuracy(graph, table, _batches(1, seed=321))
        assert report.precision_difference_percent == pytest.approx(
            report.mean_relative_error * 100
        )


class TestCompression:
    def test_weight_bytes_nearly_halve(self):
        fp16, int8 = weight_compression_bytes(_small_cnn())
        assert fp16 > int8
        assert fp16 / int8 == pytest.approx(2.0, rel=0.05)

    def test_non_matrix_ops_excluded(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 4, 8, 8))
        y = builder.batch_norm(x)  # has weights, but never quantized
        graph = builder.finish([y])
        fp16, int8 = weight_compression_bytes(graph)
        assert fp16 == int8 == 0


@settings(max_examples=15, deadline=None)
@given(
    scale=st.floats(min_value=1e-3, max_value=100.0),
    seed=st.integers(0, 1000),
)
def test_property_fake_quantize_error_bounded_by_half_step(scale, seed):
    quantizer = QuantizationScale("t", scale=scale)
    rng = np.random.default_rng(seed)
    values = rng.uniform(-127 * scale, 127 * scale, size=64)
    restored = quantizer.fake_quantize(values)
    assert np.max(np.abs(restored - values)) <= scale / 2 + 1e-9
