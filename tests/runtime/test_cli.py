"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "resnet50"])
        assert args.device == "i20"
        assert args.batch == 1
        assert args.groups is None


class TestCommands:
    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "Cloudblazer i20" in out and "Nvidia T4" in out

    def test_run(self, capsys):
        assert main(["run", "resnet50", "--groups", "3"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "ms" in out

    def test_run_with_profile(self, capsys):
        assert main(["run", "resnet50", "--groups", "3", "--profile"]) == 0
        assert "conv" in capsys.readouterr().out

    def test_run_unknown_model(self, capsys):
        assert main(["run", "alexnet"]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_estimate(self, capsys):
        assert main(["estimate", "srresnet"]) == 0
        out = capsys.readouterr().out
        for device in ("i20", "i10", "t4", "a10"):
            assert device in out

    def test_estimate_unknown_model(self):
        assert main(["estimate", "alexnet"]) == 2

    def test_evaluate(self, capsys):
        assert main(["evaluate"]) == 0
        out = capsys.readouterr().out
        assert "GeoMean" in out and "SRResnet" in out
