"""Content-addressed compile caching (docs/performance.md)."""

import numpy as np
import pytest

from repro.caching import (
    COMPILE_CACHE,
    CompileCache,
    MeasurementCache,
    export_cache_metrics,
    reset_global_caches,
)
from repro.core.datatypes import DType
from repro.models.zoo import build
from repro.obs import Observability
from repro.runtime.runtime import Device


@pytest.fixture(autouse=True)
def _isolated_caches():
    reset_global_caches()
    yield
    reset_global_caches()


class TestStructuralHash:
    def test_identical_graphs_share_a_hash(self):
        assert build("resnet50").structural_hash() == build("resnet50").structural_hash()

    def test_different_models_differ(self):
        assert build("resnet50").structural_hash() != build("vgg16").structural_hash()

    def test_attr_change_moves_the_hash(self):
        graph = build("resnet50")
        base = graph.structural_hash()
        graph.nodes[0].attrs["extra"] = 1
        assert graph.structural_hash() != base

    def test_shape_binding_moves_the_hash(self):
        from repro.graph.shape_inference import bind_shapes

        graph = build("bert_large")
        assert (
            bind_shapes(graph, batch=1).structural_hash()
            != bind_shapes(graph, batch=4).structural_hash()
        )

    def test_hash_is_hex_sha256(self):
        digest = build("resnet50").structural_hash()
        assert len(digest) == 64
        int(digest, 16)


class TestCompileCache:
    def test_recompile_returns_shared_model(self):
        device = Device.open()
        first = device.compile(build("resnet50"), batch=1)
        second = device.compile(build("resnet50"), batch=1)
        assert second is first
        assert COMPILE_CACHE.stats.hits == 1
        assert COMPILE_CACHE.stats.misses == 1

    def test_dtype_and_bindings_key_separately(self):
        device = Device.open()
        fp16 = device.compile(build("resnet50"), batch=1)
        int8 = device.compile(build("resnet50"), dtype=DType.INT8, batch=1)
        batch4 = device.compile(build("resnet50"), batch=4)
        assert fp16 is not int8
        assert fp16 is not batch4
        assert COMPILE_CACHE.stats.misses == 3

    def test_chip_config_keys_separately(self):
        i20 = Device.open("i20").compile(build("resnet50"), batch=1)
        i10 = Device.open("i10").compile(build("resnet50"), batch=1)
        assert i20 is not i10
        assert COMPILE_CACHE.stats.hits == 0

    def test_fusion_flag_keys_separately(self):
        device = Device.open()
        fused = device.compile(build("resnet50"), batch=1, fusion=True)
        unfused = device.compile(build("resnet50"), batch=1, fusion=False)
        assert fused is not unfused

    def test_cache_false_bypasses(self):
        device = Device.open()
        first = device.compile(build("resnet50"), batch=1, cache=False)
        second = device.compile(build("resnet50"), batch=1, cache=False)
        assert first is not second
        assert COMPILE_CACHE.stats.lookups == 0

    def test_private_cache_leaves_global_untouched(self):
        device = Device.open()
        private = CompileCache()
        device.compile(build("resnet50"), batch=1, cache=private)
        device.compile(build("resnet50"), batch=1, cache=private)
        assert private.stats.hits == 1
        assert COMPILE_CACHE.stats.lookups == 0

    def test_invalidate_forces_rebuild(self):
        device = Device.open()
        graph = build("resnet50")
        compiled = device.compile(graph, batch=1)
        from repro.graph.shape_inference import bind_shapes

        key = CompileCache.key_for(
            bind_shapes(graph, batch=1), device.accelerator.chip, DType.FP16, True
        )
        assert COMPILE_CACHE.invalidate(key)
        assert COMPILE_CACHE.stats.invalidations == 1
        rebuilt = device.compile(graph, batch=1)
        assert rebuilt is not compiled

    def test_clear_empties_and_counts(self):
        device = Device.open()
        device.compile(build("resnet50"), batch=1)
        assert len(COMPILE_CACHE) == 1
        assert COMPILE_CACHE.clear() == 1
        assert len(COMPILE_CACHE) == 0

    def test_capacity_evicts_fifo(self):
        cache = CompileCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_cached_model_launches_identically(self):
        """A cache-hit model behaves exactly like a fresh lowering (fresh
        device per launch so both simulations start at t=0)."""
        priming = Device.open()
        priming.compile(build("resnet50"), batch=1)  # populate the cache

        cold_device = Device.open()
        cold = cold_device.compile(build("resnet50"), batch=1, cache=False)
        latency_cold = cold_device.launch(cold).latency_ns

        warm_device = Device.open()
        warm = warm_device.compile(build("resnet50"), batch=1)
        assert COMPILE_CACHE.stats.hits >= 1
        latency_warm = warm_device.launch(warm).latency_ns
        assert latency_cold == latency_warm

    def test_obs_counters_record_hit_and_miss(self):
        obs = Observability()
        device = Device.open(obs=obs)
        device.compile(build("resnet50"), batch=1)
        device.compile(build("resnet50"), batch=1)
        lookups = obs.metrics.get("compile_cache_lookups_total")
        assert lookups.value(result="miss") == 1
        assert lookups.value(result="hit") == 1


class TestExportCacheMetrics:
    def test_gauges_mirror_stats(self):
        device = Device.open()
        device.compile(build("resnet50"), batch=1)
        device.compile(build("resnet50"), batch=1)
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        export_cache_metrics(registry)
        assert registry.get("cache_hits").value(cache="compile") == 1
        assert registry.get("cache_misses").value(cache="compile") == 1
        assert registry.get("cache_entries").value(cache="compile") == 1
        assert registry.get("cache_hit_rate").value(cache="compile") == 0.5
        assert registry.get("cache_entries").value(cache="measurement") == 0

    def test_export_twice_does_not_double_count(self):
        device = Device.open()
        device.compile(build("resnet50"), batch=1)
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        export_cache_metrics(registry)
        export_cache_metrics(registry)
        assert registry.get("cache_misses").value(cache="compile") == 1


class TestMeasurementCacheUnit:
    def test_key_for_normalizes_groups(self):
        assert MeasurementCache.key_for("m", np.int64(3)) == ("m", 3)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MeasurementCache(capacity=0)
