"""Device.open identity: repeated opens never alias telemetry or faults."""

from repro.faults import FaultInjector, FaultPlan
from repro.models.zoo import build
from repro.obs import Observability
from repro.runtime.runtime import Device


class TestOpenIdentity:
    def test_auto_ids_are_unique_and_sequential_per_name(self):
        first = Device.open("i20")
        second = Device.open("i20")
        third = Device.open("i10")
        ids = {first.device_id, second.device_id, third.device_id}
        assert len(ids) == 3
        assert first.device_id.startswith("i20-")
        assert third.device_id.startswith("i10-")

    def test_explicit_id_wins(self):
        device = Device.open("i20", device_id="i20-r7")
        assert device.device_id == "i20-r7"

    def test_opens_are_distinct_instances(self):
        first = Device.open("i20")
        second = Device.open("i20")
        assert first.accelerator is not second.accelerator
        first.malloc("x", 1024)
        assert second.memory_in_use == 0

    def test_direct_construction_has_no_identity(self):
        # the measurement path builds Devices directly; its telemetry
        # must keep the historical unlabeled shape
        from repro.core.accelerator import Accelerator

        device = Device(Accelerator.cloudblazer_i20())
        assert device.device_id == ""


class TestPerDeviceTelemetry:
    def test_launch_spans_land_on_per_device_tracks(self):
        obs = Observability()
        a = Device.open("i20", obs=obs, device_id="i20-a")
        b = Device.open("i20", obs=obs, device_id="i20-b")
        for device in (a, b):
            compiled = device.compile(build("resnet50"), batch=1)
            device.launch(compiled, num_groups=2)
        tracks = {
            span.track for span in obs.tracer.spans_in("runtime")
            if span.name.startswith("launch:")
        }
        assert tracks == {"device.i20-a", "device.i20-b"}
        devices = {
            span.args.get("device")
            for span in obs.tracer.spans_in("runtime")
            if span.name.startswith("launch:")
        }
        assert devices == {"i20-a", "i20-b"}

    def test_launch_counters_carry_the_device_label(self):
        obs = Observability()
        device = Device.open("i20", obs=obs, device_id="i20-x")
        compiled = device.compile(build("resnet50"), batch=1)
        device.launch(compiled, num_groups=2)
        launches = obs.metrics.get("runtime_launches_total")
        (labels, value), = launches.samples()
        assert dict(labels)["device"] == "i20-x"
        assert value == 1.0

    def test_unidentified_device_keeps_legacy_labels(self):
        from repro.core.accelerator import Accelerator

        obs = Observability()
        accelerator = Accelerator.cloudblazer_i20()
        accelerator.attach_observability(obs)
        device = Device(accelerator)
        compiled = device.compile(build("resnet50"), batch=1)
        device.launch(compiled, num_groups=2)
        launches = obs.metrics.get("runtime_launches_total")
        (labels, _value), = launches.samples()
        assert "device" not in dict(labels)
        tracks = {
            span.track for span in obs.tracer.spans_in("runtime")
            if span.name.startswith("launch:")
        }
        assert tracks == {"device"}


class TestPerDeviceFaultRecords:
    def test_fault_records_carry_the_injector_device(self):
        device = Device.open("i20", device_id="i20-f")
        injector = FaultInjector(
            FaultPlan(seed=1, dma_corrupt_rate=0.05), device="i20-f"
        )
        device.accelerator.attach_faults(injector)
        compiled = device.compile(build("resnet50"), batch=1)
        device.launch(compiled, num_groups=2, max_retries=3)
        assert injector.records  # the campaign actually fired
        assert all(record.device == "i20-f" for record in injector.records)

    def test_default_injector_records_are_unattributed(self):
        injector = FaultInjector(FaultPlan(seed=1, dma_corrupt_rate=0.05))
        assert injector.device == ""
        device = Device.open("i20")
        device.accelerator.attach_faults(injector)
        compiled = device.compile(build("resnet50"), batch=1)
        device.launch(compiled, num_groups=2, max_retries=3)
        assert all(record.device == "" for record in injector.records)
