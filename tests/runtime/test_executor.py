"""Unit tests for the event-driven executor on the simulated accelerator."""

import pytest

from repro.core.accelerator import Accelerator
from repro.core.config import FeatureFlags
from repro.graph.builder import GraphBuilder
from repro.runtime.executor import Executor
from repro.runtime.runtime import Device


def _tiny_graph():
    builder = GraphBuilder("tiny")
    x = builder.input("x", (1, 8, 32, 32))
    y = builder.conv2d(x, 16, 3, pad=1)
    y = builder.batch_norm(y)
    y = builder.relu(y)
    y = builder.conv2d(y, 16, 3, pad=1)
    y = builder.relu(y)
    return builder.finish([y])


@pytest.fixture
def device():
    return Device.open("i20")


@pytest.fixture
def compiled(device):
    return device.compile(_tiny_graph())


class TestExecution:
    def test_run_produces_positive_latency_and_energy(self, device, compiled):
        result = device.launch(compiled, num_groups=3)
        assert result.latency_ns > 0
        assert result.energy_joules > 0
        assert 0 < result.mean_power_watts < 150.0

    def test_one_timing_per_kernel(self, device, compiled):
        result = device.launch(compiled, num_groups=3)
        assert len(result.kernel_timings) == len(compiled.kernels)

    def test_timings_are_ordered_and_disjoint(self, device, compiled):
        result = device.launch(compiled, num_groups=3)
        timings = result.kernel_timings
        for before, after in zip(timings, timings[1:]):
            assert after.start_ns >= before.end_ns - 1e-6

    def test_more_groups_is_faster_for_large_work(self):
        # Needs enough work per kernel that the extra sync/broadcast of a
        # 6-group split is amortized (tiny kernels legitimately prefer
        # fewer groups — that is the Fig. 7 sizing policy).
        builder = GraphBuilder("big")
        x = builder.input("x", (1, 64, 128, 128))
        y = builder.conv2d(x, 128, 3, pad=1)
        y = builder.relu(y)
        y = builder.conv2d(y, 128, 3, pad=1)
        graph = builder.finish([y])
        one = Device.open("i20")
        six = Device.open("i20")
        result_one = one.launch(one.compile(graph), num_groups=1, tenant="a")
        result_six = six.launch(six.compile(graph), num_groups=6, tenant="b")
        assert result_six.latency_ns < result_one.latency_ns

    def test_icache_prefetch_covers_all_but_first(self, device, compiled):
        result = device.launch(compiled, num_groups=1)
        assert result.counters["icache_misses"] == 1
        assert result.counters["icache_prefetch_hits"] == len(compiled.kernels) - 1

    def test_resources_released_after_run(self, device, compiled):
        device.launch(compiled, num_groups=6)
        assert len(device.accelerator.resources.free_groups()) == 6

    def test_sparse_dma_reduces_wire_bytes(self):
        from repro.models import build

        dense_dev = Device(
            Accelerator.cloudblazer_i20(FeatureFlags(sparse_dma=False))
        )
        sparse_dev = Device(Accelerator.cloudblazer_i20())
        graph = build("resnet50")
        dense = dense_dev.launch(dense_dev.compile(graph, batch=1), num_groups=3)
        sparse = sparse_dev.launch(sparse_dev.compile(graph, batch=1), num_groups=3)
        assert sparse.counters["dma_wire_bytes"] < dense.counters["dma_wire_bytes"]

    def test_dvfs_disabled_runs_at_max_clock(self):
        accelerator = Accelerator.cloudblazer_i20(
            FeatureFlags(power_management=False)
        )
        device = Device(accelerator)
        result = device.launch(device.compile(_tiny_graph()), num_groups=3)
        assert result.mean_frequency_ghz == pytest.approx(1.4)

    def test_custom_window_size(self, device, compiled):
        executor = Executor(device.accelerator, window_ns=5_000.0)
        result = executor.run(compiled, num_groups=3)
        assert result.latency_ns > 0


class TestDeviceApi:
    def test_runtime_error_rename_keeps_alias(self):
        from repro.core.errors import ReproRuntimeError
        from repro.runtime import runtime

        assert runtime.ReproRuntimeError is ReproRuntimeError
        assert runtime.RuntimeError_ is ReproRuntimeError  # deprecated alias
        assert issubclass(ReproRuntimeError, RuntimeError)

    def test_open_by_name(self):
        assert Device.open("i20").accelerator.chip.name == "DTU 2.0"
        assert Device.open("i10").accelerator.chip.name == "DTU 1.0"

    def test_open_unknown_rejected(self):
        from repro.runtime.runtime import ReproRuntimeError

        with pytest.raises(ReproRuntimeError):
            Device.open("gtx1080")

    def test_malloc_free_accounting(self, device):
        device.malloc("activations", 1 << 20)
        assert device.memory_in_use == 1 << 20
        device.free("activations")
        assert device.memory_in_use == 0

    def test_compile_requires_bound_shapes(self, device):
        from repro.models import build
        from repro.runtime.runtime import ReproRuntimeError

        with pytest.raises(ReproRuntimeError):
            device.compile(build("resnet50"))  # symbolic batch unbound

    def test_compile_binds_shapes(self, device):
        from repro.models import build

        compiled = device.compile(build("resnet50"), batch=2)
        assert compiled.total_flops > 0

    def test_launch_auto_sizes_groups(self, device, compiled):
        result = device.launch(compiled)  # Fig. 7 recommendation path
        assert result.latency_ns > 0

    def test_run_convenience(self, device):
        result = device.run(_tiny_graph())
        assert result.latency_ns > 0


class TestProfiler:
    def test_category_breakdown(self, device, compiled):
        from repro.runtime.profiler import Profile

        result = device.launch(compiled, num_groups=3)
        profile = Profile(compiled, result)
        stats = profile.by_category()
        assert stats
        assert sum(stat.time_share for stat in stats) == pytest.approx(1.0)
        assert sum(stat.flops_share for stat in stats) == pytest.approx(1.0)

    def test_dense_share_high_for_conv_net(self, device, compiled):
        from repro.runtime.profiler import Profile

        result = device.launch(compiled, num_groups=3)
        profile = Profile(compiled, result)
        assert profile.dense_flops_share() > 0.9

    def test_slowest_kernels_sorted(self, device, compiled):
        from repro.runtime.profiler import Profile

        result = device.launch(compiled, num_groups=3)
        slowest = Profile(compiled, result).slowest_kernels(3)
        durations = [duration for _name, duration in slowest]
        assert durations == sorted(durations, reverse=True)

    def test_summary_renders(self, device, compiled):
        from repro.runtime.profiler import Profile

        result = device.launch(compiled, num_groups=3)
        text = Profile(compiled, result).summary()
        assert "ms" in text and "conv" in text
