"""Focused unit tests for the executor's timing/traffic arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.kernel import Kernel, KernelCost
from repro.core.accelerator import Accelerator
from repro.core.config import FeatureFlags
from repro.core.datatypes import DType
from repro.runtime.executor import Executor

MB = 1 << 20


def _kernel(flops=1e9, sparsity=0.0, category="conv"):
    return Kernel(
        name="k",
        category=category,
        dtype=DType.FP16,
        cost=KernelCost(
            flops=flops, input_bytes=4 * MB, output_bytes=2 * MB,
            weight_bytes=1 * MB,
        ),
        code_bytes=8192,
        sparsity=sparsity,
    )


@pytest.fixture
def executor():
    return Executor(Accelerator.cloudblazer_i20())


class TestComputeTime:
    def test_scales_inversely_with_clock(self, executor):
        fast = executor._compute_time_ns(_kernel(), cores=4, clock_ghz=1.4)
        slow = executor._compute_time_ns(_kernel(), cores=4, clock_ghz=0.7)
        assert slow == pytest.approx(2 * fast)

    def test_scales_inversely_with_groups(self, executor):
        one = executor._compute_time_ns(_kernel(), cores=4, clock_ghz=1.4,
                                        num_groups=1)
        six = executor._compute_time_ns(_kernel(), cores=4, clock_ghz=1.4,
                                        num_groups=6)
        assert six == pytest.approx(one / 6)

    def test_zero_flops_is_free(self, executor):
        assert executor._compute_time_ns(_kernel(flops=0), 4, 1.4) == 0.0

    def test_tensorization_utilization_slows(self, executor):
        from repro.compiler.tensorize import GemmShape, tensorize_gemm

        kernel = _kernel()
        kernel.tensorization = tensorize_gemm(
            GemmShape(m=100, n=3, k=5), DType.FP16, fine_grained=False
        )
        with_util = executor._compute_time_ns(kernel, 4, 1.4)
        kernel.tensorization = None
        without = executor._compute_time_ns(kernel, 4, 1.4)
        assert with_util > without


class TestWireBytes:
    def test_dense_kernel_unchanged(self, executor):
        assert executor._wire_bytes(_kernel(), 4 * MB) == 4 * MB

    def test_sparse_kernel_compressed(self, executor):
        wire = executor._wire_bytes(_kernel(sparsity=0.5), 4 * MB)
        # 50 % kept + 1/16 mask overhead
        assert wire == pytest.approx(4 * MB * (0.5 + 1 / 16), rel=0.01)

    def test_feature_off_disables_compression(self):
        executor = Executor(
            Accelerator.cloudblazer_i20(FeatureFlags(sparse_dma=False))
        )
        assert executor._wire_bytes(_kernel(sparsity=0.9), 4 * MB) == 4 * MB

    def test_never_expands(self, executor):
        barely = executor._wire_bytes(_kernel(sparsity=0.01), 4 * MB)
        assert barely <= 4 * MB

    @settings(max_examples=30, deadline=None)
    @given(sparsity=st.floats(0.0, 1.0), nbytes=st.integers(1, 64 * MB))
    def test_property_wire_bytes_bounded(self, sparsity, nbytes):
        executor = Executor(Accelerator.cloudblazer_i20())
        wire = executor._wire_bytes(_kernel(sparsity=sparsity), nbytes)
        assert 0 <= wire <= nbytes


class TestKernelTimingInvariants:
    def test_timeline_well_formed(self):
        from repro.graph.builder import GraphBuilder
        from repro.runtime.runtime import Device

        builder = GraphBuilder("g")
        x = builder.input("x", (1, 8, 32, 32))
        y = builder.conv2d(x, 16, 3, pad=1)
        y = builder.relu(y)
        y = builder.conv2d(y, 16, 3, pad=1)
        graph = builder.finish([y])
        device = Device.open("i20")
        result = device.launch(device.compile(graph), num_groups=2)
        for timing in result.kernel_timings:
            assert timing.end_ns > timing.start_ns
            assert timing.compute_ns >= 0
            assert timing.dma_ns >= 0
            assert timing.sync_ns >= 0
            assert timing.duration_ns >= timing.compute_ns - 1e-6
            assert 1.0 <= timing.clock_ghz <= 1.4
