"""Tests for the PCIe host interface."""

import pytest

from repro.models import build
from repro.runtime.host import HostSession, PcieLink, model_io_bytes
from repro.runtime.runtime import Device


class TestPcieLink:
    def test_default_matches_table1(self):
        device = Device.open("i20")
        session = HostSession(device)
        assert session.link.bandwidth_gbps == 64.0

    def test_transfer_time_linear_plus_latency(self):
        link = PcieLink(bandwidth_gbps=64.0, latency_us=5.0)
        small = link.transfer_time_ns(64)
        large = link.transfer_time_ns(64 << 20)
        assert small == pytest.approx(5000.0 + 1.0)
        assert large == pytest.approx(5000.0 + (64 << 20) / 64.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PcieLink(bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            PcieLink().transfer_time_ns(-1)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        device = Device.open("i20")
        compiled = device.compile(build("resnet50"), batch=1)
        return HostSession(device).infer(compiled, num_groups=3)

    def test_breakdown_sums(self, result):
        assert result.total_ns == pytest.approx(
            result.h2d_ns + result.device_ns + result.d2h_ns
        )

    def test_io_bytes_are_model_tensors(self):
        device = Device.open("i20")
        compiled = device.compile(build("resnet50"), batch=1)
        input_bytes, output_bytes = model_io_bytes(compiled)
        assert input_bytes == 3 * 224 * 224 * 2  # FP16 image
        assert output_bytes > 0

    def test_pcie_share_small_for_compute_heavy_model(self, result):
        """Device time dominates: PCIe must not be the bottleneck."""
        assert result.pcie_share < 0.25

    def test_pipelining_beats_serial(self, result):
        assert result.pipelined_interval_ns() < result.total_ns

    def test_throughput_from_interval(self, result):
        device = Device.open("i20")
        session = HostSession(device)
        throughput = session.pipelined_throughput_per_s(result)
        assert throughput == pytest.approx(1e9 / result.pipelined_interval_ns())

    def test_slow_link_shifts_bottleneck(self):
        device = Device.open("i20")
        compiled = device.compile(build("resnet50"), batch=1)
        slow = HostSession(device, PcieLink(bandwidth_gbps=0.5))
        result = slow.infer(compiled, num_groups=3, tenant="slow")
        assert result.pcie_share > 0.25
        assert result.pipelined_interval_ns() == pytest.approx(result.h2d_ns)
