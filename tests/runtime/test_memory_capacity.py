"""Device memory-capacity planning (the Fig. 12 memory row with teeth)."""

import pytest

from repro.models import MODEL_NAMES, build
from repro.runtime.runtime import Device, ReproRuntimeError


class TestFootprint:
    def test_every_zoo_model_fits_at_batch_1(self):
        device = Device.open("i20")
        for model in MODEL_NAMES:
            compiled = device.compile(build(model), batch=1)
            assert compiled.fits(16 * (1 << 30)), model

    def test_footprint_components(self):
        device = Device.open("i20")
        compiled = device.compile(build("vgg16"), batch=1)
        assert compiled.weight_bytes > 250e6  # 138M params at FP16
        assert compiled.peak_activation_bytes > 0
        assert compiled.memory_footprint_bytes() > compiled.weight_bytes

    def test_footprint_grows_with_batch(self):
        device = Device.open("i20")
        small = device.compile(build("resnet50"), batch=1)
        large = device.compile(build("resnet50"), batch=32)
        assert large.memory_footprint_bytes() > small.memory_footprint_bytes()
        # weights are batch-independent; activations carry the growth
        assert large.weight_bytes == small.weight_bytes


class TestCapacityEnforcement:
    def test_giant_batch_rejected(self):
        device = Device.open("i20")
        compiled = device.compile(build("unet"), batch=512)
        assert not compiled.fits(16 * (1 << 30))
        with pytest.raises(ReproRuntimeError):
            device.launch(compiled, num_groups=6)

    def test_preallocated_buffers_shrink_headroom(self):
        device = Device.open("i20")
        device.malloc("kv_cache", 31 << 29)  # 15.5 GiB: leaves < BERT's 0.7 GB
        compiled = device.compile(build("bert_large"), batch=1)
        with pytest.raises(ReproRuntimeError):
            device.launch(compiled, num_groups=6)
        device.free("kv_cache")
        result = device.launch(compiled, num_groups=6)
        assert result.latency_ns > 0

    def test_error_message_names_the_gap(self):
        device = Device.open("i20")
        compiled = device.compile(build("unet"), batch=512)
        with pytest.raises(ReproRuntimeError, match="GB"):
            device.launch(compiled)
