"""Tests for pipeline (layer-wise) parallelism."""

import pytest

from repro.core.accelerator import Accelerator
from repro.models import build
from repro.runtime.executor import Executor
from repro.runtime.pipeline import PipelineError, PipelineExecutor, partition_stages
from repro.runtime.runtime import Device


def _setup(model="resnet50"):
    accelerator = Accelerator.cloudblazer_i20()
    device = Device(accelerator)
    compiled = device.compile(build(model), batch=1)
    return accelerator, compiled


class TestPartitioning:
    def test_ranges_cover_all_kernels_contiguously(self):
        accelerator, compiled = _setup()
        ranges = partition_stages(compiled, Executor(accelerator), 3, 2)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == len(compiled.kernels)
        for (first_lo, first_hi), (second_lo, _stop) in zip(ranges, ranges[1:]):
            assert first_hi == second_lo
            assert first_hi > first_lo

    def test_stage_count_respected(self):
        accelerator, compiled = _setup()
        for stages in (1, 2, 3, 6):
            ranges = partition_stages(compiled, Executor(accelerator), stages, 1)
            assert len(ranges) == stages

    def test_balance_is_reasonable(self):
        accelerator, compiled = _setup()
        executor = Executor(accelerator)
        ranges = partition_stages(compiled, executor, 3, 2)
        chip = accelerator.chip
        costs = [
            executor._compute_time_ns(kernel, chip.cores_per_group, 1.4, 2)
            for kernel in compiled.kernels
        ]
        stage_costs = [sum(costs[lo:hi]) for lo, hi in ranges]
        assert max(stage_costs) < 3 * (sum(costs) / 3)

    def test_too_many_stages_rejected(self):
        accelerator, compiled = _setup()
        with pytest.raises(PipelineError):
            partition_stages(
                compiled, Executor(accelerator), len(compiled.kernels) + 1, 1
            )


class TestPipelineExecution:
    def test_requests_all_complete(self):
        accelerator, compiled = _setup()
        result = PipelineExecutor(accelerator).run(
            compiled, num_stages=3, requests=4
        )
        assert result.requests == 4
        assert result.makespan_ns > result.first_latency_ns > 0

    def test_streaming_amortizes(self):
        """Steady-state interval must be well below the first latency."""
        accelerator, compiled = _setup()
        result = PipelineExecutor(accelerator).run(
            compiled, num_stages=3, requests=8
        )
        assert result.steady_interval_ns < 0.8 * result.first_latency_ns

    def test_throughput_beats_serial_data_parallel(self):
        accelerator, compiled = _setup()
        pipelined = PipelineExecutor(accelerator).run(
            compiled, num_stages=3, requests=8
        )
        device = Device.open("i20")
        serial = device.launch(
            device.compile(build("resnet50"), batch=1), num_groups=6
        )
        serial_throughput = 1e9 / serial.latency_ns
        assert pipelined.throughput_per_s > serial_throughput

    def test_resources_released_after_run(self):
        accelerator, compiled = _setup()
        PipelineExecutor(accelerator).run(compiled, num_stages=2, requests=2)
        assert len(accelerator.resources.free_groups()) == 6

    def test_single_stage_degenerates_to_serial(self):
        accelerator, compiled = _setup()
        result = PipelineExecutor(accelerator).run(
            compiled, num_stages=1, requests=2
        )
        assert result.makespan_ns > 0

    def test_invalid_parameters(self):
        accelerator, compiled = _setup()
        with pytest.raises(PipelineError):
            PipelineExecutor(accelerator).run(compiled, num_stages=7, requests=1)
        with pytest.raises(PipelineError):
            PipelineExecutor(accelerator).run(compiled, num_stages=2, requests=0)
