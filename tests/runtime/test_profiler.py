"""Unit tests for the profiler's category-share math.

The paper's §VI-D discussion leans on these summaries (share of
high-computational-density operators per model), so the arithmetic is
pinned here on hand-built executions: DENSE_CATEGORIES splits, zero-flops
kernels, and empty-execution guards.
"""

from types import SimpleNamespace

import pytest

from repro.runtime.executor import ExecutionResult, KernelTiming
from repro.runtime.profiler import DENSE_CATEGORIES, Profile


def _kernel(name, category, flops):
    return SimpleNamespace(
        name=name, category=category, cost=SimpleNamespace(flops=flops)
    )


def _timing(name, category, start, end):
    return KernelTiming(
        name=name, category=category, start_ns=start, end_ns=end,
        compute_ns=end - start, dma_ns=0.0, icache_stall_ns=0.0,
        sync_ns=0.0, clock_ghz=1.0,
    )


def _profile(kernels, timings, latency_ns=1000.0):
    compiled = SimpleNamespace(name="toy", kernels=kernels)
    result = ExecutionResult(
        latency_ns=latency_ns, energy_joules=0.0, kernel_timings=timings,
        mean_power_watts=0.0, mean_frequency_ghz=1.0,
    )
    return Profile(compiled, result)


class TestByCategory:
    def test_time_and_flops_shares(self):
        profile = _profile(
            kernels=[
                _kernel("conv_0", "conv", 900.0),
                _kernel("pool_0", "pool", 100.0),
            ],
            timings=[
                _timing("conv_0", "conv", 0.0, 600.0),
                _timing("pool_0", "pool", 600.0, 1000.0),
            ],
        )
        stats = {stat.category: stat for stat in profile.by_category()}
        assert stats["conv"].time_share == pytest.approx(0.6)
        assert stats["pool"].time_share == pytest.approx(0.4)
        assert stats["conv"].flops_share == pytest.approx(0.9)
        assert stats["pool"].flops_share == pytest.approx(0.1)

    def test_sorted_by_time_descending(self):
        profile = _profile(
            kernels=[
                _kernel("a", "conv", 1.0),
                _kernel("b", "softmax", 1.0),
            ],
            timings=[
                _timing("a", "conv", 0.0, 10.0),
                _timing("b", "softmax", 10.0, 100.0),
            ],
        )
        assert [s.category for s in profile.by_category()] == [
            "softmax", "conv",
        ]

    def test_zero_flops_kernel_counts_time_but_no_flops(self):
        profile = _profile(
            kernels=[
                _kernel("conv_0", "conv", 100.0),
                _kernel("reshape_0", "layout", 0.0),
            ],
            timings=[
                _timing("conv_0", "conv", 0.0, 50.0),
                _timing("reshape_0", "layout", 50.0, 100.0),
            ],
        )
        stats = {stat.category: stat for stat in profile.by_category()}
        assert stats["layout"].time_share == pytest.approx(0.5)
        assert stats["layout"].flops_share == 0.0
        assert stats["layout"].kernels == 1

    def test_category_missing_from_timings_still_listed(self):
        # a compiled kernel that never ran (e.g. fused away) keeps its
        # flops share visible with zero measured time
        profile = _profile(
            kernels=[
                _kernel("conv_0", "conv", 100.0),
                _kernel("act_0", "activation", 50.0),
            ],
            timings=[_timing("conv_0", "conv", 0.0, 10.0)],
        )
        stats = {stat.category: stat for stat in profile.by_category()}
        assert stats["activation"].time_ns == 0.0
        assert stats["activation"].flops_share == pytest.approx(50.0 / 150.0)

    def test_empty_execution_is_safe(self):
        assert _profile(kernels=[], timings=[]).by_category() == []


class TestDenseFlopsShare:
    def test_conv_and_gemm_are_the_dense_set(self):
        assert DENSE_CATEGORIES == frozenset({"conv", "gemm"})

    def test_split_across_dense_and_sparse(self):
        profile = _profile(
            kernels=[
                _kernel("conv_0", "conv", 600.0),
                _kernel("fc_0", "gemm", 300.0),
                _kernel("softmax_0", "softmax", 100.0),
            ],
            timings=[],
        )
        assert profile.dense_flops_share() == pytest.approx(0.9)

    def test_all_zero_flops_returns_zero(self):
        profile = _profile(
            kernels=[_kernel("reshape_0", "layout", 0.0)], timings=[]
        )
        assert profile.dense_flops_share() == 0.0


class TestSlowestKernels:
    def test_ordered_and_capped(self):
        profile = _profile(
            kernels=[],
            timings=[
                _timing("fast", "conv", 0.0, 1.0),
                _timing("slow", "conv", 0.0, 100.0),
                _timing("mid", "conv", 0.0, 10.0),
            ],
        )
        assert profile.slowest_kernels(2) == [
            ("slow", 100.0), ("mid", 10.0),
        ]


class TestSummary:
    def test_one_line_per_category(self):
        profile = _profile(
            kernels=[_kernel("conv_0", "conv", 100.0)],
            timings=[_timing("conv_0", "conv", 0.0, 10.0)],
        )
        summary = profile.summary()
        assert "model toy" in summary
        assert "conv" in summary
