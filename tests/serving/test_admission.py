"""Unit tests for SLO-class admission (repro.serving.admission)."""

import pytest

from repro.core.errors import ReproRuntimeError
from repro.serving.admission import (
    DEFAULT_SLO_CLASSES,
    AdmissionController,
    AdmissionPolicy,
    SloClass,
)


class TestSloClassValidation:
    def test_bad_queue_limit_rejected(self):
        with pytest.raises(ReproRuntimeError, match="queue_limit"):
            SloClass("x", deadline_ms=10.0, queue_limit=0, shed_priority=1)

    def test_bad_deadline_rejected(self):
        with pytest.raises(ReproRuntimeError, match="deadline"):
            SloClass("x", deadline_ms=0.0, queue_limit=8, shed_priority=1)

    def test_none_deadline_is_best_effort(self):
        cls = SloClass("x", deadline_ms=None, queue_limit=8, shed_priority=1)
        assert cls.deadline_ms is None

    def test_negative_priority_rejected(self):
        with pytest.raises(ReproRuntimeError, match="shed_priority"):
            SloClass("x", deadline_ms=10.0, queue_limit=8, shed_priority=-1)


class TestPolicyValidation:
    def test_needs_classes(self):
        with pytest.raises(ReproRuntimeError, match="class"):
            AdmissionPolicy(classes=())

    def test_duplicate_names_rejected(self):
        cls = SloClass("x", 10.0, 8, 1)
        with pytest.raises(ReproRuntimeError, match="duplicate"):
            AdmissionPolicy(classes=(cls, cls), default_class="x")

    def test_bad_hysteresis_rejected(self):
        with pytest.raises(ReproRuntimeError, match="brownout"):
            AdmissionPolicy(brownout_enter=0.5, brownout_exit=0.5)

    def test_unknown_default_class_rejected(self):
        with pytest.raises(ReproRuntimeError, match="default_class"):
            AdmissionPolicy(default_class="vip")

    def test_class_for_falls_back_to_default(self):
        policy = AdmissionPolicy()
        assert policy.class_for("standard").name == "standard"
        assert policy.class_for("unheard-of").name == "standard"

    def test_max_brownout_level_counts_shedable_classes(self):
        # Default: standard + batch shedable, interactive protected.
        assert AdmissionPolicy().max_brownout_level == 2

    def test_default_classes_shape(self):
        names = [cls.name for cls in DEFAULT_SLO_CLASSES]
        assert names == ["interactive", "standard", "batch"]
        assert DEFAULT_SLO_CLASSES[0].shed_priority == 0


class TestBackpressure:
    def test_backpressure_is_worst_class_fullness(self):
        ctl = AdmissionController(AdmissionPolicy())
        # interactive limit 64, standard 128, batch 256.
        bp = ctl.backpressure({"interactive": 32, "standard": 32, "batch": 32})
        assert bp == pytest.approx(0.5)

    def test_backpressure_clamps_to_one(self):
        ctl = AdmissionController(AdmissionPolicy())
        assert ctl.backpressure({"interactive": 1000}) == 1.0

    def test_empty_depths_is_zero(self):
        assert AdmissionController(AdmissionPolicy()).backpressure({}) == 0.0


class TestBrownoutHysteresis:
    def _ctl(self):
        return AdmissionController(
            AdmissionPolicy(brownout_enter=0.8, brownout_exit=0.3)
        )

    def test_level_steps_up_at_enter(self):
        ctl = self._ctl()
        assert ctl.update(0.79) == 0
        assert ctl.update(0.8) == 1
        assert ctl.update(0.9) == 2
        assert ctl.update(0.95) == 2  # capped at max level

    def test_level_steps_down_at_exit_only(self):
        ctl = self._ctl()
        ctl.update(0.9)
        assert ctl.update(0.5) == 1   # dead band: holds
        assert ctl.update(0.3) == 0   # at/below exit: steps down
        assert ctl.update(0.1) == 0

    def test_accounting_tracks_peak_and_changes(self):
        ctl = self._ctl()
        ctl.update(0.9)
        ctl.update(0.85)
        ctl.update(0.2)
        assert ctl.peak_backpressure == pytest.approx(0.9)
        assert ctl.max_level_seen == 2
        assert ctl.level_changes == 3

    def test_reset_restores_pristine_state(self):
        ctl = self._ctl()
        ctl.update(0.9)
        ctl.reset()
        assert ctl.brownout_level == 0
        assert ctl.peak_backpressure == 0.0
        assert ctl.level_changes == 0

    def test_shed_order_batch_then_standard_never_interactive(self):
        ctl = self._ctl()
        ctl.update(0.9)  # level 1
        assert ctl.sheds("batch")
        assert not ctl.sheds("standard")
        assert not ctl.sheds("interactive")
        ctl.update(0.9)  # level 2
        assert ctl.sheds("batch")
        assert ctl.sheds("standard")
        assert not ctl.sheds("interactive")


class TestDecide:
    def _ctl(self):
        return AdmissionController(AdmissionPolicy())

    def test_admits_under_nominal_conditions(self):
        decision = self._ctl().decide(
            "interactive", depth=0, predicted_wait_ns=0.0, service_ns=1e6
        )
        assert decision.admitted
        assert decision.reason == ""

    def test_queue_full_sheds(self):
        decision = self._ctl().decide(
            "interactive", depth=64, predicted_wait_ns=0.0, service_ns=1e6
        )
        assert not decision.admitted
        assert decision.reason == "queue-full"

    def test_deadline_sheds_predictably_late_arrivals(self):
        # interactive deadline 50 ms: 60 ms predicted wait -> shed now.
        decision = self._ctl().decide(
            "interactive", depth=0, predicted_wait_ns=60e6, service_ns=1e6
        )
        assert not decision.admitted
        assert decision.reason == "deadline"

    def test_best_effort_class_never_deadline_shed(self):
        decision = self._ctl().decide(
            "batch", depth=0, predicted_wait_ns=1e12, service_ns=1e6
        )
        assert decision.admitted

    def test_brownout_precedes_other_checks(self):
        ctl = self._ctl()
        ctl.update(1.0)
        decision = ctl.decide(
            "batch", depth=0, predicted_wait_ns=0.0, service_ns=1e6
        )
        assert not decision.admitted
        assert decision.reason == "brownout"

    def test_protected_class_admitted_even_at_max_brownout(self):
        ctl = self._ctl()
        ctl.update(1.0)
        ctl.update(1.0)
        decision = ctl.decide(
            "interactive", depth=0, predicted_wait_ns=0.0, service_ns=1e6
        )
        assert decision.admitted

    def test_unknown_class_uses_default_policy(self):
        # Falls back to "standard": deadline 250 ms.
        decision = self._ctl().decide(
            "mystery", depth=0, predicted_wait_ns=300e6, service_ns=1e6
        )
        assert not decision.admitted
        assert decision.reason == "deadline"
