"""Unit tests for the autoscaler control loop (repro.serving.autoscale)."""

import pytest

from repro.core.errors import ReproRuntimeError
from repro.serving.autoscale import Autoscaler, AutoscalerConfig

MS = 1e6


def _tick(scaler, t_ms, active, bp=0.0, latencies=()):
    """Feed one window of observations, then evaluate at t_ms."""
    for slo_class, latency_ms in latencies:
        scaler.observe(slo_class, latency_ms)
    return scaler.evaluate(t_ms * MS, active, bp)


class TestConfigValidation:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ReproRuntimeError, match="min_active"):
            AutoscalerConfig(min_active=0)
        with pytest.raises(ReproRuntimeError, match="max_active"):
            AutoscalerConfig(min_active=4, max_active=2)

    def test_bad_intervals_rejected(self):
        with pytest.raises(ReproRuntimeError, match="eval_interval"):
            AutoscalerConfig(eval_interval_ms=0.0)
        with pytest.raises(ReproRuntimeError, match="cooldown"):
            AutoscalerConfig(cooldown_ms=-1.0)

    def test_bad_backpressure_band_rejected(self):
        with pytest.raises(ReproRuntimeError, match="backpressure"):
            AutoscalerConfig(backpressure_low=0.8, backpressure_high=0.5)

    def test_bad_fraction_and_streak_rejected(self):
        with pytest.raises(ReproRuntimeError, match="scale_down_fraction"):
            AutoscalerConfig(scale_down_fraction=1.0)
        with pytest.raises(ReproRuntimeError, match="scale_down_consecutive"):
            AutoscalerConfig(scale_down_consecutive=0)

    def test_bad_target_rejected(self):
        with pytest.raises(ReproRuntimeError, match="target"):
            AutoscalerConfig(p99_targets_ms=(("interactive", 0.0),))


class TestScaleUp:
    def _scaler(self):
        return Autoscaler(AutoscalerConfig(
            eval_interval_ms=25.0, cooldown_ms=75.0,
            p99_targets_ms=(("interactive", 40.0),),
        ))

    def test_p99_over_target_votes_up(self):
        scaler = self._scaler()
        latencies = [("interactive", 90.0)] * 20
        assert _tick(scaler, 25, active=1, latencies=latencies) == 1
        assert scaler.actions[-1].direction == "up"
        assert "p99[interactive]" in scaler.actions[-1].reason

    def test_high_backpressure_votes_up_without_latency(self):
        scaler = self._scaler()
        assert _tick(scaler, 25, active=1, bp=0.9) == 1
        assert "backpressure" in scaler.actions[-1].reason

    def test_quiet_window_holds(self):
        scaler = self._scaler()
        latencies = [("interactive", 5.0)] * 20
        assert _tick(scaler, 25, active=1, latencies=latencies) == 0

    def test_cooldown_blocks_consecutive_ups(self):
        scaler = self._scaler()
        hot = [("interactive", 90.0)] * 20
        assert _tick(scaler, 25, active=1, latencies=hot) == 1
        assert _tick(scaler, 50, active=2, latencies=hot) == 0   # cooling
        assert _tick(scaler, 125, active=2, latencies=hot) == 1  # cooled

    def test_max_active_caps_growth(self):
        scaler = Autoscaler(AutoscalerConfig(max_active=2, cooldown_ms=0.0))
        assert _tick(scaler, 25, active=2, bp=1.0) == 0
        assert scaler.actions == []

    def test_infeasible_up_not_recorded(self):
        scaler = self._scaler()
        hot = [("interactive", 90.0)] * 20
        for latency in hot:
            scaler.observe(*latency)
        assert scaler.evaluate(25 * MS, 1, 0.0, can_up=False) == 0
        assert scaler.actions == []

    def test_untargeted_class_never_votes(self):
        scaler = self._scaler()
        latencies = [("batch", 10_000.0)] * 20
        assert _tick(scaler, 25, active=1, latencies=latencies) == 0


class TestScaleDown:
    def _scaler(self):
        return Autoscaler(AutoscalerConfig(
            eval_interval_ms=25.0, cooldown_ms=0.0,
            scale_down_consecutive=3,
            p99_targets_ms=(("interactive", 40.0),),
        ))

    def test_needs_consecutive_quiet_windows(self):
        scaler = self._scaler()
        calm = [("interactive", 2.0)] * 20
        assert _tick(scaler, 25, active=2, latencies=calm) == 0
        assert _tick(scaler, 50, active=2, latencies=calm) == 0
        assert _tick(scaler, 75, active=2, latencies=calm) == -1
        assert scaler.actions[-1].direction == "down"

    def test_busy_window_resets_the_streak(self):
        scaler = self._scaler()
        calm = [("interactive", 2.0)] * 20
        hot = [("interactive", 90.0)] * 20
        _tick(scaler, 25, active=2, latencies=calm)
        _tick(scaler, 50, active=2, latencies=hot)   # streak resets
        _tick(scaler, 75, active=2, latencies=calm)
        assert _tick(scaler, 100, active=2, latencies=calm) == 0
        assert _tick(scaler, 125, active=2, latencies=calm) == -1

    def test_never_below_min_active(self):
        scaler = self._scaler()
        calm = [("interactive", 2.0)] * 20
        for t in (25, 50, 75, 100):
            assert _tick(scaler, t, active=1, latencies=calm) == 0
        assert scaler.actions == []

    def test_high_p99_within_fraction_blocks_down(self):
        # p99 between fraction*target and target is neither up nor down.
        # 24 ms lands in the (10, 25] bucket, so the interpolated p99
        # (~24.9 ms) sits between fraction*target (20) and target (40).
        scaler = self._scaler()
        warm = [("interactive", 24.0)] * 20
        for t in (25, 50, 75, 100):
            assert _tick(scaler, t, active=2, latencies=warm) == 0

    def test_infeasible_down_not_recorded(self):
        scaler = self._scaler()
        for t in (25, 50):
            _tick(scaler, t, active=2)
        assert scaler.evaluate(75 * MS, 2, 0.0, can_down=False) == 0
        assert scaler.actions == []


class TestAudit:
    def test_action_counters_and_reversals(self):
        scaler = Autoscaler(AutoscalerConfig(
            cooldown_ms=0.0, scale_down_consecutive=1,
            p99_targets_ms=(("interactive", 40.0),),
        ))
        hot = [("interactive", 90.0)] * 20
        calm = [("interactive", 2.0)] * 20
        _tick(scaler, 25, active=1, latencies=hot)    # up
        _tick(scaler, 50, active=2, latencies=calm)   # down
        _tick(scaler, 75, active=1, latencies=hot)    # up
        assert scaler.scale_ups == 2
        assert scaler.scale_downs == 1
        assert scaler.reversals() == 2

    def test_windows_do_not_leak_between_evaluations(self):
        scaler = Autoscaler(AutoscalerConfig(
            cooldown_ms=0.0, p99_targets_ms=(("interactive", 40.0),),
        ))
        hot = [("interactive", 90.0)] * 20
        assert _tick(scaler, 25, active=1, latencies=hot) == 1
        # Next window is empty: the hot observations must not carry over.
        assert _tick(scaler, 125, active=2) == 0

    def test_reset_clears_history(self):
        scaler = Autoscaler(AutoscalerConfig(cooldown_ms=0.0))
        _tick(scaler, 25, active=1, bp=1.0)
        scaler.reset()
        assert scaler.actions == []
        assert scaler.scale_ups == 0
        # Fresh state behaves exactly like a new scaler.
        assert _tick(scaler, 25, active=1, bp=1.0) == 1
