"""FleetManager: multi-device routing, failover, and the repair lifecycle.

The acceptance scenario lives in tests/integration/test_chaos.py; here we
exercise the fleet layer directly — bring-up identity, shared compile
cache, hedged failover, quarantine/promotion/reintegration, shedding with
zero capacity, determinism, and the exported fleet metrics.
"""

import pytest

from repro.caching import COMPILE_CACHE
from repro.core.errors import ReproRuntimeError
from repro.faults import FaultSchedule, StormPhase
from repro.obs import Observability
from repro.serving import (
    FleetConfig,
    FleetManager,
    RasConfig,
    ReplicaStatus,
    Request,
    TenantConfig,
    TrafficPattern,
    generate_trace,
)

SERVICE = {"a": 1.0e6, "b": 5.0e6}


def _tenants():
    return [
        TenantConfig("a", "resnet50", groups=2, max_batch=1, sla_ms=50.0),
        TenantConfig("b", "unet", groups=3, sla_ms=None),
    ]


def _fleet(config=None, schedule=None, ras=None, obs=None):
    return FleetManager(
        _tenants(),
        config=config or FleetConfig(replicas=2, validate_on_open=False),
        schedule=schedule,
        ras=ras or RasConfig(max_retries=2, queue_depth_limit=64),
        obs=obs,
        service_times_ns=dict(SERVICE),
    )


def _trace(seed=0, rate_a=200.0, rate_b=40.0, duration=0.5):
    return generate_trace(
        [TrafficPattern("a", rate_a), TrafficPattern("b", rate_b)],
        duration_s=duration,
        seed=seed,
    )


KILL_SCHEDULE = FaultSchedule(
    phases=(StormPhase.kill(device=1, at_s=0.15, duration_s=0.2),)
)
KILL_CONFIG = FleetConfig(
    replicas=2, hot_spares=1, quarantine_threshold=2, repair_ms=60.0,
    validate_on_open=False,
)


class TestBringUp:
    def test_replica_device_ids_are_stable_and_unique(self):
        fleet = _fleet(config=FleetConfig(replicas=3, validate_on_open=False))
        ids = [replica.device.device_id for replica in fleet._replicas]
        assert ids == ["i20-r0", "i20-r1", "i20-r2"]
        accelerators = {
            id(replica.device.accelerator) for replica in fleet._replicas
        }
        assert len(accelerators) == 3  # distinct card instances

    def test_models_compile_once_across_replicas(self):
        hits0, misses0 = COMPILE_CACHE.stats.hits, COMPILE_CACHE.stats.misses
        fleet = _fleet(config=FleetConfig(replicas=4, validate_on_open=False))
        hits = COMPILE_CACHE.stats.hits - hits0
        misses = COMPILE_CACHE.stats.misses - misses0
        n_models = len(fleet.tenants)
        # One compile call per tenant model for the whole fleet (the
        # replicas are the same chip, so bring-up shares the compiled
        # object instead of re-hashing the graph per replica); each
        # lookup misses at most once (zero when a previous test already
        # cached the model).
        assert hits + misses == n_models
        assert misses <= n_models
        for tenant in fleet.tenants:
            compiled = {
                id(replica.compiled[tenant])
                for replica in fleet._replicas
            }
            assert len(compiled) == 1  # shared CompiledModel per model

    def test_validate_on_open_records_bringup_launches(self):
        fleet = FleetManager(
            _tenants(),
            config=FleetConfig(replicas=2, validate_on_open=True),
            service_times_ns=dict(SERVICE),
        )
        kinds = [event.kind for event in fleet._bringup_events]
        assert kinds == ["opened", "validated"] * 2

    def test_invalid_config_rejected(self):
        for kwargs in (
            {"replicas": 0},
            {"hot_spares": -1},
            {"quarantine_threshold": 0},
            {"repair_ms": 0.0},
            {"max_repair_attempts": 0},
            {"max_hedges": -1},
        ):
            with pytest.raises(ReproRuntimeError, match="FleetConfig"):
                FleetConfig(**kwargs)

    def test_duplicate_tenants_rejected(self):
        tenants = [_tenants()[0], _tenants()[0]]
        with pytest.raises(ReproRuntimeError, match="duplicate"):
            FleetManager(tenants, service_times_ns=dict(SERVICE))

    def test_empty_tenants_rejected(self):
        with pytest.raises(ReproRuntimeError, match="at least one"):
            FleetManager([], service_times_ns=dict(SERVICE))


class TestQuietFleet:
    def test_no_faults_serves_everything(self):
        report = _fleet().run(_trace())
        for stats in report.tenants.values():
            assert stats.served == stats.offered
            assert stats.failed == 0 and stats.shed == 0
            assert stats.availability == 1.0
        assert report.hedged_requests == 0
        assert report.quarantines == 0
        assert report.min_healthy == 2

    def test_conservation_always_holds(self):
        report = _fleet(
            schedule=KILL_SCHEDULE, config=KILL_CONFIG
        ).run(_trace())
        for stats in report.tenants.values():
            assert stats.served + stats.failed + stats.shed == stats.offered

    def test_load_spreads_over_replicas(self):
        report = _fleet().run(_trace())
        served = [device.served for device in report.devices]
        assert all(count > 0 for count in served)


class TestFailoverLifecycle:
    def test_kill_drives_quarantine_repair_reintegrate(self):
        report = _fleet(schedule=KILL_SCHEDULE, config=KILL_CONFIG).run(_trace())
        transitions = report.transitions("r1")
        assert "quarantined" in transitions
        assert "repaired" in transitions
        assert "reintegrated" in transitions
        assert transitions.index("quarantined") < transitions.index("repaired")
        assert transitions.index("repaired") <= transitions.index("reintegrated")
        killed = report.device("r1")
        assert killed.quarantines == 1
        assert killed.final_status in ("active", "standby")

    def test_kill_loses_zero_requests(self):
        report = _fleet(schedule=KILL_SCHEDULE, config=KILL_CONFIG).run(_trace())
        for stats in report.tenants.values():
            assert stats.served == stats.offered
        assert report.hedged_requests > 0
        assert report.failovers >= report.hedged_requests

    def test_hot_spare_promoted_on_quarantine(self):
        report = _fleet(schedule=KILL_SCHEDULE, config=KILL_CONFIG).run(_trace())
        assert report.promotions == 1
        assert "promoted" in report.transitions("r2")
        assert report.min_healthy == 2  # the spare kept the pool at strength

    def test_no_spare_drops_healthy_count(self):
        config = FleetConfig(
            replicas=2, hot_spares=0, quarantine_threshold=2,
            repair_ms=60.0, validate_on_open=False,
        )
        report = _fleet(schedule=KILL_SCHEDULE, config=config).run(_trace())
        assert report.quarantines >= 1
        assert report.min_healthy == 1

    def test_zero_capacity_sheds_instead_of_crashing(self):
        # One replica, no spares, killed for the whole remaining trace,
        # no hedges: the first two fatals quarantine it and everything
        # after is shed-no-capacity until the post-trace repair drain.
        config = FleetConfig(
            replicas=1, hot_spares=0, quarantine_threshold=1,
            repair_ms=1000.0, max_hedges=0, validate_on_open=False,
        )
        schedule = FaultSchedule(
            phases=(StormPhase.kill(device=0, at_s=0.1, duration_s=0.9),)
        )
        report = _fleet(schedule=schedule, config=config).run(_trace())
        stats = report.tenants["a"]
        assert stats.shed_no_capacity > 0
        assert stats.shed >= stats.shed_no_capacity
        assert stats.served + stats.failed + stats.shed == stats.offered
        assert report.min_healthy == 0
        # the drain still ran the repair probe after the storm ended
        assert report.transitions("r0")[-1] == "reintegrated"

    def test_repeated_probe_failures_retire_the_board(self):
        # Repair probes land inside the storm window -> every probe
        # faults -> the board retires after max_repair_attempts.
        config = FleetConfig(
            replicas=2, hot_spares=0, quarantine_threshold=1,
            repair_ms=10.0, max_repair_attempts=2, validate_on_open=False,
        )
        schedule = FaultSchedule(
            phases=(StormPhase.kill(device=1, at_s=0.05, duration_s=10.0),)
        )
        report = _fleet(schedule=schedule, config=config).run(_trace())
        assert report.retirements == 1
        assert report.device("r1").final_status == ReplicaStatus.RETIRED.value
        assert report.transitions("r1")[-1] == "retired"
        assert report.repair_failures == 2


class TestDeterminism:
    def test_same_seed_same_report(self):
        trace = _trace()
        first = _fleet(schedule=KILL_SCHEDULE, config=KILL_CONFIG).run(trace)
        second = _fleet(schedule=KILL_SCHEDULE, config=KILL_CONFIG).run(trace)
        assert first.to_dict() == second.to_dict()

    def test_rerun_same_manager_is_reproducible(self):
        trace = _trace()
        fleet = _fleet(schedule=KILL_SCHEDULE, config=KILL_CONFIG)
        assert fleet.run(trace).to_dict() == fleet.run(trace).to_dict()

    def test_different_seed_changes_outcomes(self):
        trace = _trace()
        base = dict(
            replicas=2, hot_spares=1, quarantine_threshold=2,
            repair_ms=60.0, validate_on_open=False,
        )
        first = _fleet(
            schedule=KILL_SCHEDULE, config=FleetConfig(seed=0, **base)
        ).run(trace)
        second = _fleet(
            schedule=KILL_SCHEDULE, config=FleetConfig(seed=1, **base)
        ).run(trace)
        assert first.to_dict() != second.to_dict()


class TestTraceValidation:
    def test_non_monotone_arrivals_rejected(self):
        fleet = _fleet()
        trace = [
            Request(request_id=0, tenant="a", arrival_ns=2e6),
            Request(request_id=1, tenant="a", arrival_ns=1e6),
        ]
        with pytest.raises(ReproRuntimeError, match="non-decreasing"):
            fleet.run(trace)

    def test_unknown_tenant_rejected(self):
        fleet = _fleet()
        trace = [Request(request_id=0, tenant="ghost", arrival_ns=0.0)]
        with pytest.raises(ReproRuntimeError, match="unknown tenant"):
            fleet.run(trace)


class TestFleetObservability:
    def test_registry_mirrors_the_report(self):
        obs = Observability()
        report = _fleet(
            schedule=KILL_SCHEDULE, config=KILL_CONFIG, obs=obs
        ).run(_trace())
        registry = obs.metrics
        assert registry.get("fleet_replicas").value() == 3
        assert (
            registry.get("fleet_healthy_replicas").value()
            == report.final_healthy
        )
        assert (
            registry.get("fleet_min_healthy_replicas").value()
            == report.min_healthy
        )
        assert (
            registry.get("fleet_failovers_total").total() == report.failovers
        )
        assert (
            registry.get("fleet_hedged_requests_total").total()
            == report.hedged_requests
        )
        assert (
            registry.get("fleet_quarantines_total").total()
            == report.quarantines
        )
        for name, stats in report.tenants.items():
            assert registry.get("fleet_requests_total").value(
                tenant=name, status="served"
            ) == stats.served
            assert registry.get("fleet_availability").value(
                tenant=name
            ) == stats.availability

    def test_per_device_launch_counters_distinguish_replicas(self):
        obs = Observability()
        FleetManager(
            _tenants(),
            config=FleetConfig(replicas=2, validate_on_open=True),
            obs=obs,
            service_times_ns=dict(SERVICE),
        )
        launches = obs.metrics.get("runtime_launches_total")
        devices = {
            labels["device"]
            for labels, value in launches.samples()
            if labels["status"] == "ok" and value == 1.0
        }
        assert devices == {"i20-r0", "i20-r1"}
