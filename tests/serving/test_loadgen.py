"""Unit tests for open-loop load generation (repro.serving.loadgen)."""

import dataclasses

import pytest

from repro.serving.loadgen import (
    LoadSpec,
    demo_specs,
    generate_load,
    merge_traces,
    summarize_trace,
)
from repro.serving.workload import TrafficPattern, generate_trace


class TestLoadSpecValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            LoadSpec("a", rate_per_s=-1.0)

    def test_zero_rate_allowed(self):
        assert LoadSpec("a", rate_per_s=0.0).peak_rate_per_s == 0.0

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            LoadSpec("a", rate_per_s=10.0, shape="sawtooth")

    def test_bad_population_rejected(self):
        with pytest.raises(ValueError, match="users"):
            LoadSpec("a", rate_per_s=10.0, users=0)
        with pytest.raises(ValueError, match="session_mean_requests"):
            LoadSpec("a", rate_per_s=10.0, session_mean_requests=0.5)

    def test_bad_diurnal_params_rejected(self):
        with pytest.raises(ValueError, match="amplitude"):
            LoadSpec("a", rate_per_s=10.0, shape="diurnal", amplitude=1.0)
        with pytest.raises(ValueError, match="period"):
            LoadSpec("a", rate_per_s=10.0, shape="diurnal", period_s=0.0)

    def test_bad_flash_params_rejected(self):
        with pytest.raises(ValueError, match="flash_multiplier"):
            LoadSpec("a", rate_per_s=10.0, shape="flash-crowd",
                     flash_multiplier=0.5)
        with pytest.raises(ValueError, match="flash_ramp_s"):
            LoadSpec("a", rate_per_s=10.0, shape="flash-crowd",
                     flash_duration_s=0.1, flash_ramp_s=0.2)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            generate_load([LoadSpec("a", 10.0)], duration_s=0.0)


class TestRateShapes:
    def test_poisson_rate_is_constant(self):
        spec = LoadSpec("a", rate_per_s=100.0)
        assert spec.rate_at(0.0) == spec.rate_at(0.7) == 100.0
        assert spec.peak_rate_per_s == 100.0

    def test_diurnal_swings_around_baseline(self):
        spec = LoadSpec("a", rate_per_s=100.0, shape="diurnal",
                        period_s=1.0, amplitude=0.5)
        assert spec.rate_at(0.0) == pytest.approx(50.0)    # trough at t=0
        assert spec.rate_at(0.5) == pytest.approx(150.0)   # peak mid-period
        assert spec.peak_rate_per_s == pytest.approx(150.0)

    def test_flash_crowd_ramps_to_peak_and_back(self):
        spec = LoadSpec("a", rate_per_s=100.0, shape="flash-crowd",
                        flash_at_s=0.2, flash_duration_s=0.2,
                        flash_multiplier=4.0, flash_ramp_s=0.05)
        assert spec.rate_at(0.1) == 100.0                      # before
        assert spec.rate_at(0.225) == pytest.approx(250.0)     # mid-ramp
        assert spec.rate_at(0.3) == pytest.approx(400.0)       # plateau
        assert spec.rate_at(0.5) == 100.0                      # after
        assert spec.peak_rate_per_s == pytest.approx(400.0)


class TestGenerateLoad:
    def test_same_seed_byte_identical(self):
        specs = demo_specs(scale=0.5)
        a = generate_load(specs, duration_s=0.3, seed=11)
        b = generate_load(specs, duration_s=0.3, seed=11)
        assert [repr(r) for r in a] == [repr(r) for r in b]

    def test_different_seed_differs(self):
        specs = demo_specs(scale=0.5)
        a = generate_load(specs, duration_s=0.3, seed=0)
        b = generate_load(specs, duration_s=0.3, seed=1)
        assert [r.arrival_ns for r in a] != [r.arrival_ns for r in b]

    def test_trace_sorted_and_ids_sequential(self):
        trace = generate_load(demo_specs(), duration_s=0.3, seed=0)
        arrivals = [r.arrival_ns for r in trace]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in trace] == list(range(len(trace)))

    def test_requests_carry_class_and_user(self):
        trace = generate_load(demo_specs(), duration_s=0.3, seed=0)
        classes = {r.slo_class for r in trace}
        assert classes == {"interactive", "standard", "batch"}
        assert all(r.user_id is not None for r in trace)

    def test_adding_a_spec_never_perturbs_existing_streams(self):
        base = [LoadSpec("a", 200.0, slo_class="interactive")]
        extended = base + [LoadSpec("b", 300.0, slo_class="batch")]
        solo = generate_load(base, duration_s=0.3, seed=3)
        both = generate_load(extended, duration_s=0.3, seed=3)
        mine = [r.arrival_ns for r in both if r.tenant == "a"]
        assert mine == [r.arrival_ns for r in solo]

    def test_mean_rate_tracks_spec(self):
        trace = generate_load(
            [LoadSpec("a", 1000.0)], duration_s=1.0, seed=0
        )
        assert 800 <= len(trace) <= 1200  # ~3 sigma around 1000

    def test_flash_crowd_concentrates_arrivals(self):
        spec = LoadSpec("a", 500.0, shape="flash-crowd", flash_at_s=0.3,
                        flash_duration_s=0.2, flash_multiplier=5.0)
        trace = generate_load([spec], duration_s=1.0, seed=0)
        inside = sum(1 for r in trace if 0.3e9 <= r.arrival_ns < 0.5e9)
        outside_rate = (len(trace) - inside) / 0.8
        assert inside / 0.2 > 2.0 * outside_rate

    def test_zero_rate_spec_emits_nothing(self):
        trace = generate_load(
            [LoadSpec("a", 0.0), LoadSpec("b", 100.0)], duration_s=0.3,
            seed=0,
        )
        assert trace
        assert all(r.tenant == "b" for r in trace)

    def test_user_population_bound(self):
        spec = LoadSpec("a", 2000.0, users=7)
        trace = generate_load([spec], duration_s=0.5, seed=0)
        assert {r.user_id for r in trace} <= set(range(7))

    def test_sessions_issue_multiple_requests(self):
        spec = LoadSpec("a", 2000.0, users=500, session_mean_requests=8.0)
        trace = generate_load([spec], duration_s=0.5, seed=0)
        summary = summarize_trace(trace, duration_s=0.5)[0]
        assert summary.sessions < summary.requests


class TestMergeTraces:
    def test_merge_interleaves_and_reids(self):
        open_loop = generate_load(
            [LoadSpec("a", 300.0, slo_class="interactive")],
            duration_s=0.3, seed=0,
        )
        closed = generate_trace(
            [TrafficPattern("b", 300.0)], duration_s=0.3, seed=1
        )
        merged = merge_traces(open_loop, closed)
        assert len(merged) == len(open_loop) + len(closed)
        arrivals = [r.arrival_ns for r in merged]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in merged] == list(range(len(merged)))
        assert {r.tenant for r in merged} == {"a", "b"}

    def test_merge_preserves_classes(self):
        open_loop = generate_load(
            [LoadSpec("a", 300.0, slo_class="batch")], duration_s=0.3,
            seed=0,
        )
        merged = merge_traces(open_loop)
        assert all(r.slo_class == "batch" for r in merged)


class TestSummarize:
    def test_summary_groups_by_tenant_and_class(self):
        trace = generate_load(demo_specs(), duration_s=0.3, seed=0)
        summaries = summarize_trace(trace, duration_s=0.3)
        keys = [(s.tenant, s.slo_class) for s in summaries]
        assert keys == sorted(keys)
        assert {k[1] for k in keys} == {"interactive", "standard", "batch"}
        assert sum(s.requests for s in summaries) == len(trace)

    def test_peak_rate_at_least_mean(self):
        trace = generate_load(demo_specs(), duration_s=0.3, seed=0)
        for summary in summarize_trace(trace, duration_s=0.3):
            assert summary.peak_rate_per_s >= summary.mean_rate_per_s

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            summarize_trace([], duration_s=0.0)

    def test_to_dict_roundtrip_fields(self):
        trace = generate_load(demo_specs(), duration_s=0.2, seed=0)
        payload = summarize_trace(trace, duration_s=0.2)[0].to_dict()
        assert set(payload) == {
            "tenant", "slo_class", "requests", "mean_rate_per_s",
            "peak_rate_per_s", "users", "sessions",
        }


class TestDemoSpecs:
    def test_demo_specs_scale(self):
        base = demo_specs()
        scaled = demo_specs(scale=2.0)
        for spec, double in zip(base, scaled):
            assert double.rate_per_s == pytest.approx(2.0 * spec.rate_per_s)
            assert dataclasses.replace(
                double, rate_per_s=spec.rate_per_s
            ) == spec
