"""Measurement memoization + degraded-mode guards (docs/performance.md)."""

import pytest

from repro.caching import MEASUREMENT_CACHE, reset_global_caches
from repro.obs import Observability
from repro.serving import (
    InferenceServer,
    NoHealthyGroupsError,
    TenantConfig,
    measure_service_time_ns,
)


@pytest.fixture(autouse=True)
def _isolated_caches():
    reset_global_caches()
    yield
    reset_global_caches()


TENANTS = [
    TenantConfig("vision", "resnet50", groups=4, max_batch=4),
    TenantConfig("audio", "conformer", groups=2, max_batch=2),
]


class TestMeasurementMemo:
    def test_remeasure_is_a_hit_with_identical_value(self):
        first = measure_service_time_ns("resnet50", 4)
        assert MEASUREMENT_CACHE.stats.misses == 1
        second = measure_service_time_ns("resnet50", 4)
        assert second == first
        assert MEASUREMENT_CACHE.stats.hits == 1

    def test_groups_key_separately(self):
        four = measure_service_time_ns("resnet50", 4)
        two = measure_service_time_ns("resnet50", 2)
        assert four != two
        assert MEASUREMENT_CACHE.stats.misses == 2

    def test_second_server_performs_zero_measurement_runs(self):
        """ISSUE acceptance: constructing a second InferenceServer for the
        same tenant set is pure cache hits — zero simulator runs."""
        first = InferenceServer(TENANTS)
        misses_after_first = MEASUREMENT_CACHE.stats.misses
        assert misses_after_first == len(TENANTS)

        hits_before = MEASUREMENT_CACHE.stats.hits
        second = InferenceServer(TENANTS)
        assert MEASUREMENT_CACHE.stats.misses == misses_after_first
        assert MEASUREMENT_CACHE.stats.hits == hits_before + len(TENANTS)
        assert second.service_times_ns == first.service_times_ns

    def test_degraded_remeasure_hits_the_memo(self):
        server = InferenceServer(TENANTS)
        misses_before = MEASUREMENT_CACHE.stats.misses
        degraded = server._service_time("vision", 2)
        assert degraded > 0
        # Either memoized from a prior (model, 2) measurement or a fresh
        # miss — but asking again must not re-run the simulator.
        misses_after = MEASUREMENT_CACHE.stats.misses
        server2 = InferenceServer(TENANTS)
        assert server2._service_time("vision", 2) == degraded
        assert MEASUREMENT_CACHE.stats.misses == misses_after

    def test_user_supplied_times_never_measure(self):
        server = InferenceServer(
            TENANTS, service_times_ns={"vision": 1e6, "audio": 2e6}
        )
        assert MEASUREMENT_CACHE.stats.lookups == 0
        # Linear fallback, no simulator involved.
        assert server._service_time("vision", 2) == 2e6

    def test_obs_measurement_bypasses_memo(self):
        """Measurements with a hub attached must actually run: their spans
        are the observable product."""
        measure_service_time_ns("resnet50", 4)  # seed the memo
        obs = Observability()
        value = measure_service_time_ns("resnet50", 4, obs=obs)
        spans = [s for s in obs.tracer.spans if s.name == "measure:resnet50x4"]
        assert spans, "observed measurement emitted no span"
        assert value == measure_service_time_ns("resnet50", 4)


class TestNoHealthyGroupsGuard:
    def test_zero_groups_raises_typed_error(self):
        server = InferenceServer(
            TENANTS, service_times_ns={"vision": 1e6, "audio": 2e6}
        )
        with pytest.raises(NoHealthyGroupsError):
            server._service_time("vision", 0)

    def test_negative_groups_raises(self):
        server = InferenceServer(
            TENANTS, service_times_ns={"vision": 1e6, "audio": 2e6}
        )
        with pytest.raises(NoHealthyGroupsError):
            server._service_time("vision", -1)

    def test_error_is_runtime_error_subclass(self):
        from repro.core.errors import ReproRuntimeError

        assert issubclass(NoHealthyGroupsError, ReproRuntimeError)
