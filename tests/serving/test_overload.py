"""Overload robustness: saturation acceptance, continuous batching and
per-class report guards.

The headline acceptance criterion lives here: at ~2x fleet capacity the
admission layer must keep interactive availability above its floor while
batch (then standard) sheds first, deterministically from one root seed.
"""

import pytest

from repro.obs import Observability
from repro.serving import (
    AdmissionPolicy,
    AutoscalerConfig,
    FleetConfig,
    FleetManager,
    InferenceServer,
    LoadSpec,
    RasConfig,
    SloClass,
    TenantConfig,
    generate_load,
)
from repro.serving.server import batch_service_time_ns

SERVICE_NS = 1.0e6  # 1 ms batch-1 service time => ~1000 rps per replica

ADMISSION = AdmissionPolicy(
    classes=(
        SloClass("interactive", deadline_ms=60.0, queue_limit=64,
                 shed_priority=0),
        SloClass("standard", deadline_ms=120.0, queue_limit=48,
                 shed_priority=1),
        SloClass("batch", deadline_ms=None, queue_limit=48, shed_priority=2),
    ),
    brownout_enter=0.5,
    brownout_exit=0.25,
)


def _tenants(coalesce_ms=2.0, max_batch=8):
    return [
        TenantConfig("app", "resnet50", groups=2, max_batch=max_batch,
                     sla_ms=50.0, coalesce_window_ms=coalesce_ms)
    ]


def _fleet(admission=ADMISSION, autoscaler=None, replicas=2, spares=0,
           obs=None):
    return FleetManager(
        _tenants(),
        config=FleetConfig(replicas=replicas, hot_spares=spares,
                           validate_on_open=False),
        ras=RasConfig(max_retries=2),
        obs=obs,
        service_times_ns={"app": SERVICE_NS},
        admission=admission,
        autoscaler=autoscaler,
    )


def _overload_trace(multiplier=1.0, seed=0, duration=0.5):
    """~2900 rps against 2 replicas x ~1467 rps batch-8 throughput ~= 2x
    capacity at multiplier 1.0 once the flash crowd lands."""
    specs = [
        LoadSpec("app", 500.0 * multiplier, slo_class="interactive",
                 shape="flash-crowd", flash_at_s=0.15, flash_duration_s=0.2,
                 flash_multiplier=4.0, flash_ramp_s=0.05),
        LoadSpec("app", 900.0 * multiplier, slo_class="standard"),
        LoadSpec("app", 1500.0 * multiplier, slo_class="batch", users=50),
    ]
    return generate_load(specs, duration_s=duration, seed=seed)


class TestSaturationAcceptance:
    """The ISSUE acceptance test: 2x capacity, interactive survives."""

    @pytest.fixture(scope="class")
    def report(self):
        return _fleet().run(_overload_trace())

    def test_fleet_is_actually_saturated(self, report):
        stats = report.tenants["app"]
        assert stats.shed > 0.15 * stats.offered

    def test_interactive_availability_above_floor(self, report):
        by_class = report.tenants["app"].by_class
        assert by_class["interactive"].availability >= 0.9

    def test_batch_sheds_first_and_most(self, report):
        by_class = report.tenants["app"].by_class
        shed_rate = {
            name: entry.shed / entry.offered
            for name, entry in by_class.items()
        }
        assert shed_rate["batch"] >= shed_rate["standard"]
        assert shed_rate["standard"] >= shed_rate["interactive"]
        assert shed_rate["batch"] > 0.2

    def test_interactive_never_brownout_shed(self, report):
        interactive = report.tenants["app"].by_class["interactive"]
        assert interactive.shed_for("brownout") == 0

    def test_class_conservation(self, report):
        for entry in report.tenants["app"].by_class.values():
            assert entry.served + entry.failed + entry.shed == entry.offered

    def test_brownout_engaged_and_backpressure_observed(self, report):
        assert report.max_brownout_level >= 1
        assert report.peak_backpressure > 0.5

    def test_same_seed_byte_identical(self, report):
        again = _fleet().run(_overload_trace())
        assert again.to_dict() == report.to_dict()

    def test_shed_rate_monotone_in_offered_overload(self):
        rates = []
        for multiplier in (0.5, 1.0, 1.5):
            stats = _fleet().run(
                _overload_trace(multiplier)
            ).tenants["app"]
            rates.append(stats.shed / stats.offered)
        assert rates == sorted(rates)


class TestAutoscaledOverload:
    # Shedding keeps latency low, so the scale-up vote must come from the
    # backpressure signal: trigger below the brownout_enter (0.5) the
    # admission policy sheds at.
    AUTOSCALER = AutoscalerConfig(
        min_active=1, max_active=4, eval_interval_ms=25.0,
        cooldown_ms=75.0, backpressure_high=0.4, backpressure_low=0.1,
        p99_targets_ms=(("interactive", 40.0), ("standard", 150.0)),
    )

    def test_autoscaler_absorbs_the_storm_without_flapping(self):
        report = _fleet(
            autoscaler=self.AUTOSCALER, replicas=2, spares=2
        ).run(_overload_trace())
        assert report.autoscale_ups >= 1
        assert report.autoscale_reversals <= 2
        assert report.final_healthy > 2

    def test_scaling_up_improves_availability(self):
        trace = _overload_trace()
        static = _fleet(replicas=2).run(trace).tenants["app"]
        scaled = _fleet(
            autoscaler=self.AUTOSCALER, replicas=2, spares=2
        ).run(trace).tenants["app"]
        assert scaled.served > static.served


class TestContinuousBatching:
    def test_zero_window_matches_legacy_bit_for_bit(self):
        trace = _overload_trace(multiplier=0.2)
        a = FleetManager(
            _tenants(coalesce_ms=0.0),
            config=FleetConfig(replicas=2, validate_on_open=False),
            service_times_ns={"app": SERVICE_NS},
        ).run(trace)
        b = FleetManager(
            _tenants(coalesce_ms=0.0),
            config=FleetConfig(replicas=2, validate_on_open=False),
            service_times_ns={"app": SERVICE_NS},
        ).run(trace)
        assert a.to_dict() == b.to_dict()

    def test_coalescing_window_raises_saturated_throughput(self):
        trace = _overload_trace()
        unbatched = FleetManager(
            _tenants(coalesce_ms=0.0, max_batch=1),
            config=FleetConfig(replicas=2, validate_on_open=False),
            service_times_ns={"app": SERVICE_NS},
            admission=ADMISSION,
        ).run(trace).tenants["app"]
        batched = _fleet().run(trace).tenants["app"]
        assert batched.served > 1.2 * unbatched.served

    def test_batch_service_time_sublinear(self):
        single = batch_service_time_ns(SERVICE_NS, 1)
        eight = batch_service_time_ns(SERVICE_NS, 8)
        assert single == SERVICE_NS
        assert SERVICE_NS < eight < 8 * SERVICE_NS

    def test_window_validation(self):
        with pytest.raises(ValueError, match="coalesce_window_ms"):
            TenantConfig("a", "resnet50", groups=2, coalesce_window_ms=-1.0)


class TestServerAdmission:
    """The single-server layer shares the same admission machinery."""

    def _server(self):
        return InferenceServer(
            _tenants(),
            service_times_ns={"app": SERVICE_NS},
            admission=ADMISSION,
        )

    def test_per_class_breakdown_present(self):
        reports = self._server().run(_overload_trace(duration=0.3))
        by_class = reports["app"].by_class
        assert set(by_class) == {"interactive", "standard", "batch"}
        for entry in by_class.values():
            assert entry.served + entry.failed + entry.shed == entry.offered

    def test_interactive_preferred_under_saturation(self):
        by_class = self._server().run(
            _overload_trace(duration=0.3)
        )["app"].by_class
        assert (
            by_class["interactive"].availability
            > by_class["batch"].availability
        )

    def test_shed_reasons_exported_to_metrics(self):
        obs = Observability()
        server = InferenceServer(
            _tenants(),
            service_times_ns={"app": SERVICE_NS},
            admission=ADMISSION,
            obs=obs,
        )
        reports = server.run(_overload_trace(duration=0.3))
        shed_total = obs.metrics.get("serving_shed_total")
        assert shed_total is not None
        assert shed_total.total() == reports["app"].shed


class TestReportGuards:
    """TenantReport / SloClassStats stay finite on empty + all-shed runs."""

    def test_empty_trace_report_is_finite(self):
        reports = InferenceServer(
            _tenants(), service_times_ns={"app": SERVICE_NS},
            admission=ADMISSION,
        ).run([])
        report = reports["app"]
        assert report.offered == 0
        assert report.availability == 1.0
        assert report.sla_violation_rate == 0.0
        assert report.throughput_per_s == 0.0
        assert report.by_class == {}

    def test_all_shed_class_stats_stay_finite(self):
        from repro.serving import SloClassStats

        entry = SloClassStats("batch", offered=5, shed=5)
        entry.record_shed("brownout")
        assert entry.availability == 0.0
        assert entry.p99_ms == 0.0
        entry.set_percentiles([], buckets=(1.0, 2.0))
        assert entry.p99_ms == 0.0  # no latencies -> percentiles untouched

    def test_zero_offered_class_availability_is_one(self):
        from repro.serving import SloClassStats

        assert SloClassStats("standard").availability == 1.0
        assert SloClassStats("standard").availability_while_healthy == 1.0
