"""Fleet power governor tests: config, apportionment, storms, composition.

The governor (docs/power.md) owns a rack power budget, re-apportions it
into per-device caps every window, and degrades devices gracefully via
the modelled DVFS + stall loop. These tests pin the apportionment
policies, the parking order, the storm schedule shapes, byte-identical
replay, and the detached no-op guarantee (no ``power`` report key, no
behavioral change) the acceptance bar demands.
"""

import json
from dataclasses import dataclass

import pytest

from repro.core.errors import ReproRuntimeError
from repro.serving.fleet import FleetConfig, FleetManager, ReplicaStatus
from repro.serving.powercap import (
    FleetPowerGovernor,
    PowerCapConfig,
    PowerCapPhase,
)
from repro.serving.routing import PowerAwareRouter, ReferenceRouter
from repro.serving.server import TenantConfig
from repro.serving.workload import TrafficPattern, generate_trace


@dataclass
class _FakeReplica:
    index: int
    name: str
    status: ReplicaStatus = ReplicaStatus.ACTIVE
    free_at: float = 0.0


def _governor(n=3, statuses=None, **overrides):
    config = PowerCapConfig(**{"fleet_budget_watts": 450.0, **overrides})
    governor = FleetPowerGovernor(config)
    statuses = statuses or [ReplicaStatus.ACTIVE] * n
    replicas = [
        _FakeReplica(index=i, name=f"r{i}", status=status)
        for i, status in enumerate(statuses)
    ]
    governor.reset(replicas)
    return governor, replicas


def _caps(governor):
    return [state.cap_watts for state in governor._devices]


class TestPowerCapConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ReproRuntimeError):
            PowerCapConfig(fleet_budget_watts=0.0)
        with pytest.raises(ReproRuntimeError):
            PowerCapConfig(fleet_budget_watts=300.0, policy="greedy")
        with pytest.raises(ReproRuntimeError):
            PowerCapConfig(fleet_budget_watts=300.0, window_ms=0.0)
        with pytest.raises(ReproRuntimeError):
            PowerCapConfig(
                fleet_budget_watts=300.0, device_idle_watts=200.0,
                device_peak_watts=150.0,
            )

    def test_phase_validation(self):
        with pytest.raises(ReproRuntimeError):
            PowerCapPhase(0.2, 0.1, 300.0)
        with pytest.raises(ReproRuntimeError):
            PowerCapPhase(0.1, 0.2, -5.0)
        with pytest.raises(ReproRuntimeError):
            PowerCapPhase(0.1, 0.2, 300.0, shape="sawtooth")

    def test_step_phase_holds_budget(self):
        phase = PowerCapPhase(0.1, 0.2, 300.0, shape="step")
        assert phase.budget_at(0.15, base_watts=450.0) == 300.0

    def test_ramp_phase_interpolates_from_base(self):
        phase = PowerCapPhase(0.0, 0.1, 300.0, shape="ramp")
        assert phase.budget_at(0.0, base_watts=450.0) == pytest.approx(450.0)
        assert phase.budget_at(0.05, base_watts=450.0) == pytest.approx(375.0)
        assert phase.budget_at(0.1, base_watts=450.0) == pytest.approx(300.0)

    def test_oscillate_phase_square_waves(self):
        phase = PowerCapPhase(
            0.0, 0.4, 300.0, shape="oscillate", period_s=0.2
        )
        assert phase.budget_at(0.05, base_watts=450.0) == 300.0
        assert phase.budget_at(0.15, base_watts=450.0) == 450.0
        assert phase.budget_at(0.25, base_watts=450.0) == 300.0

    def test_budget_at_latest_active_phase_wins(self):
        config = PowerCapConfig(
            fleet_budget_watts=450.0,
            phases=(
                PowerCapPhase(0.0, 0.5, 400.0),
                PowerCapPhase(0.2, 0.3, 300.0),
            ),
        )
        assert config.budget_at(0.1e9) == 400.0
        assert config.budget_at(0.25e9) == 300.0
        assert config.budget_at(0.6e9) == 450.0

    def test_scaled_tightens_base_and_phases(self):
        config = PowerCapConfig(
            fleet_budget_watts=400.0,
            phases=(PowerCapPhase(0.1, 0.2, 300.0),),
        )
        tight = config.scaled(0.5)
        assert tight.fleet_budget_watts == 200.0
        assert tight.phases[0].budget_watts == 150.0
        assert tight.policy == config.policy


class TestApportionment:
    def test_generous_budget_lifts_every_device_to_peak(self):
        """Top-up pass: budget >= n*peak must leave zero throttle."""
        governor, _ = _governor(n=3, fleet_budget_watts=450.0)
        assert _caps(governor) == [150.0, 150.0, 150.0]
        assert all(s.dilation == 1.0 for s in governor._devices)

    def test_caps_never_exceed_budget(self):
        governor, replicas = _governor(n=3, fleet_budget_watts=320.0)
        statuses = [r.status for r in replicas]
        for window in range(1, 6):
            governor.note_busy(0, 0.0, 1e12)  # device 0 saturated
            governor.close_window(window * governor.window_ns, statuses)
            assert sum(_caps(governor)) <= 320.0 + 1e-9

    def test_proportional_rewards_demand(self):
        governor, replicas = _governor(n=2, fleet_budget_watts=220.0)
        statuses = [r.status for r in replicas]
        # Device 0 fully busy for a window, device 1 idle.
        governor.note_busy(0, 0.0, governor.window_ns)
        governor.close_window(governor.window_ns, statuses)
        caps = _caps(governor)
        assert caps[0] > caps[1]

    def test_fair_share_splits_equally(self):
        governor, replicas = _governor(
            n=2, fleet_budget_watts=220.0, policy="fair-share"
        )
        statuses = [r.status for r in replicas]
        governor.note_busy(0, 0.0, governor.window_ns)
        governor.close_window(governor.window_ns, statuses)
        caps = _caps(governor)
        assert caps[0] == pytest.approx(caps[1])

    def test_priority_feeds_low_indexes_first(self):
        governor, _ = _governor(
            n=3, fleet_budget_watts=300.0, policy="priority"
        )
        caps = _caps(governor)
        # floors 135, surplus 165: device 0 reaches peak (105), device 1
        # takes the remaining 60, device 2 idles at its floor.
        assert caps[0] == pytest.approx(150.0)
        assert caps[1] == pytest.approx(105.0)
        assert caps[2] == pytest.approx(45.0)

    def test_parks_standby_before_active(self):
        governor, _ = _governor(
            n=3,
            statuses=[
                ReplicaStatus.ACTIVE, ReplicaStatus.ACTIVE,
                ReplicaStatus.STANDBY,
            ],
            fleet_budget_watts=100.0,  # floors need 135: someone parks
        )
        states = governor._devices
        assert states[2].parked  # the standby goes first
        assert not states[0].parked and not states[1].parked

    def test_parks_high_index_active_last_resort(self):
        governor, _ = _governor(n=3, fleet_budget_watts=100.0)
        states = governor._devices
        assert states[2].parked
        assert not states[0].parked and not states[1].parked
        assert governor.parked_indices() == frozenset({2})

    def test_retired_devices_draw_nothing(self):
        governor, replicas = _governor(
            n=2,
            statuses=[ReplicaStatus.ACTIVE, ReplicaStatus.RETIRED],
            fleet_budget_watts=450.0,
        )
        statuses = [r.status for r in replicas]
        governor.close_window(governor.window_ns, statuses)
        assert governor._devices[1].parked
        assert governor._devices[1].energy_joules == 0.0

    def test_tight_cap_induces_dilation(self):
        governor, replicas = _governor(n=2, fleet_budget_watts=160.0)
        statuses = [r.status for r in replicas]
        governor.close_window(governor.window_ns, statuses)
        dilations = governor.dilations()
        assert all(value > 1.0 for value in dilations.values())

    def test_avoid_indices_follow_throttle_threshold(self):
        governor, replicas = _governor(
            n=2, fleet_budget_watts=120.0, route_avoid_throttle=0.05
        )
        statuses = [r.status for r in replicas]
        governor.close_window(governor.window_ns, statuses)
        assert governor.avoid_indices()  # deep caps throttle everyone

    def test_power_pressure_needs_sustained_throttle(self):
        governor, replicas = _governor(
            n=2, fleet_budget_watts=120.0,
            brownout_throttle=0.1, brownout_windows=2,
        )
        statuses = [r.status for r in replicas]
        governor.close_window(governor.window_ns, statuses)
        assert governor.power_pressure() == 0.0  # streak too short
        governor.close_window(2 * governor.window_ns, statuses)
        assert governor.power_pressure() > 0.0

    def test_can_power_promotion_checks_headroom(self):
        generous, _ = _governor(n=3, fleet_budget_watts=450.0)
        assert generous.can_power_promotion(active_count=2)
        tight, _ = _governor(n=3, fleet_budget_watts=140.0)
        assert not tight.can_power_promotion(active_count=2)


class TestPowerAwareRouter:
    def _replicas(self, n=3):
        return [_FakeReplica(index=i, name=f"r{i}") for i in range(n)]

    def test_soft_avoid_prefers_unthrottled(self):
        router = PowerAwareRouter(ReferenceRouter())
        replicas = self._replicas()
        router.rebuild(replicas)
        router.set_power_sets(avoid=frozenset({0}), parked=frozenset())
        assert router.pick(0.0).index == 1

    def test_soft_avoid_falls_back_when_all_avoided(self):
        router = PowerAwareRouter(ReferenceRouter())
        replicas = self._replicas(2)
        router.rebuild(replicas)
        router.set_power_sets(avoid=frozenset({0, 1}), parked=frozenset())
        assert router.pick(0.0) is not None

    def test_parked_is_a_hard_exclusion(self):
        router = PowerAwareRouter(ReferenceRouter())
        replicas = self._replicas(2)
        router.rebuild(replicas)
        router.set_power_sets(avoid=frozenset(), parked=frozenset({0, 1}))
        assert router.pick(0.0) is None

    def test_rebuild_clears_power_sets(self):
        router = PowerAwareRouter(ReferenceRouter())
        replicas = self._replicas(2)
        router.rebuild(replicas)
        router.set_power_sets(avoid=frozenset(), parked=frozenset({0, 1}))
        router.rebuild(replicas)
        assert router.pick(0.0) is not None


TENANTS = [TenantConfig("t", "resnet50", groups=2, max_batch=1)]
SERVICE_TIMES = {"t": 1.0e6}


def _run_fleet(powercap=None, rate=800.0, seed=3):
    trace = generate_trace(
        [TrafficPattern("t", rate)], duration_s=0.2, seed=11
    )
    manager = FleetManager(
        TENANTS,
        config=FleetConfig(replicas=2, hot_spares=0, seed=seed),
        service_times_ns=dict(SERVICE_TIMES),
        powercap=powercap,
    )
    return manager.run(trace)


class TestFleetIntegration:
    def test_detached_report_has_no_power_key(self):
        report = _run_fleet()
        assert report.power is None
        assert "power" not in report.to_dict()

    def test_governed_rerun_is_byte_identical(self):
        config = PowerCapConfig(fleet_budget_watts=240.0)
        first = _run_fleet(powercap=config)
        second = _run_fleet(powercap=config)
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )

    def test_uncapped_budget_matches_detached_service(self):
        """A budget the caps never touch must not change what's served."""
        detached = _run_fleet()
        governed = _run_fleet(
            powercap=PowerCapConfig(fleet_budget_watts=300.0)
        )
        base = detached.tenants["t"]
        capped = governed.tenants["t"]
        assert capped.served == base.served
        assert capped.p99_ms == base.p99_ms
        assert governed.power["mean_throttle_ratio"] == 0.0

    def test_tight_budget_dilates_but_conserves(self):
        loose = _run_fleet(powercap=PowerCapConfig(fleet_budget_watts=300.0))
        tight = _run_fleet(powercap=PowerCapConfig(fleet_budget_watts=240.0))
        assert tight.tenants["t"].served == loose.tenants["t"].served
        assert tight.tenants["t"].p99_ms > loose.tenants["t"].p99_ms
        assert tight.power["mean_throttle_ratio"] > 0.0
        assert (
            tight.power["energy_per_inference_mj"]
            < loose.power["energy_per_inference_mj"]
        )

    def test_storm_schedule_reflected_in_window_rows(self):
        config = PowerCapConfig(
            fleet_budget_watts=300.0,
            phases=(PowerCapPhase(0.05, 0.15, 240.0, shape="step"),),
        )
        report = _run_fleet(powercap=config)
        rows = report.power["window_rows"]
        budgets = {row["budget_watts"] for row in rows}
        assert budgets == {300.0, 240.0}
        assert report.power["min_budget_watts"] == 240.0
        for row in rows:
            assert row["cap_watts"] <= row["budget_watts"] + 1e-9
            assert row["draw_watts"] <= row["cap_in_force_watts"] + 1e-9

    def test_power_gauges_exported(self):
        from repro.obs import Observability

        obs = Observability()
        trace = generate_trace(
            [TrafficPattern("t", 400.0)], duration_s=0.1, seed=11
        )
        manager = FleetManager(
            TENANTS,
            config=FleetConfig(replicas=2, hot_spares=0, seed=3),
            service_times_ns=dict(SERVICE_TIMES),
            obs=obs,
            powercap=PowerCapConfig(fleet_budget_watts=240.0),
        )
        report = manager.run(trace)
        registry = obs.metrics
        assert registry.get("fleet_power_cap_watts").value() == 240.0
        assert (
            registry.get("energy_per_inference_mj").value()
            == report.power["energy_per_inference_mj"]
        )
        device_cap = registry.get("device_power_cap_watts")
        for name, entry in report.power["devices"].items():
            assert device_cap.value(device=name) == entry["final_cap_watts"]
