"""RAS layer of the inference server: retries, shedding, circuit breaking.

Includes the end-to-end acceptance test: >= 1 % transient DMA + ECC
faults injected into a two-tenant serving run, survived by retries and
circuit breaking with a bounded SLA violation rate and exact accounting
of every failed / retried / shed / degraded request.
"""

import pytest

from repro.faults import FaultPlan
from repro.serving import (
    InferenceServer,
    RasConfig,
    TenantConfig,
    TenantHealth,
    TrafficPattern,
    generate_trace,
)

SERVICE = {"a": 1.0e6, "b": 10.0e6}  # 1 ms and 10 ms service times


def _tenants(sla_a=20.0, max_batch_a=4):
    return [
        TenantConfig("a", "resnet50", groups=2, max_batch=max_batch_a, sla_ms=sla_a),
        TenantConfig("b", "unet", groups=3, sla_ms=100.0),
    ]


def _server(plan=None, ras=None, isolated=True, **tenant_kwargs):
    return InferenceServer(
        _tenants(**tenant_kwargs),
        isolated=isolated,
        service_times_ns=dict(SERVICE),
        fault_plan=plan,
        ras=ras,
    )


def _trace(seed=0, rate_a=300.0, rate_b=40.0, duration=1.0):
    return generate_trace(
        [TrafficPattern("a", rate_a), TrafficPattern("b", rate_b)],
        duration_s=duration,
        seed=seed,
    )


class TestZeroFaultDefault:
    def test_no_plan_and_disabled_plan_identical(self):
        trace = _trace()
        plain = _server().run(trace)
        zeroed = _server(plan=FaultPlan()).run(trace)
        for name in ("a", "b"):
            assert plain[name] == zeroed[name]

    def test_no_faults_means_no_ras_counters(self):
        reports = _server().run(_trace())
        for report in reports.values():
            assert report.failed == 0
            assert report.retried == 0
            assert report.shed == 0
            assert report.degraded == 0
            assert report.availability == 1.0


class TestFaultCampaign:
    # >= 1 % transient DMA + ECC fault rates, plus rarer fatal faults.
    PLAN = FaultPlan(
        seed=11,
        dma_corrupt_rate=0.01,
        ecc_ce_rate=0.01,
        dma_abort_rate=0.0002,
        ecc_ue_rate=0.0002,
    )
    RAS = RasConfig(max_retries=3, retry_backoff_ms=0.05, queue_depth_limit=64)

    def test_two_tenant_campaign_survives_with_bounded_sla(self):
        trace = _trace()
        reports = _server(plan=self.PLAN, ras=self.RAS).run(trace)
        offered = {
            name: sum(1 for r in trace if r.tenant == name) for name in ("a", "b")
        }
        for name in ("a", "b"):
            report = reports[name]
            # exact accounting: every offered request lands in one bucket
            assert report.completed + report.failed + report.shed == offered[name]
            # faults actually flowed: retries happened and were survived
            assert report.completed > 0
            # SLA violation rate of completed requests stays bounded: the
            # retries that absorb transients cost bounded extra latency.
            assert report.sla_violation_rate < 0.10
            # batching compounds per-event rates over 16*batch events, so a
            # few requests exhaust their retries; most are absorbed.
            assert report.availability > 0.90
            assert report.retried > report.failed
        # with per-event rates compounded over a request, retries must fire
        assert sum(reports[n].retried for n in reports) > 0

    def test_same_plan_and_seed_reproduces_exactly(self):
        trace = _trace()
        first = _server(plan=self.PLAN, ras=self.RAS).run(trace)
        second = _server(plan=self.PLAN, ras=self.RAS).run(trace)
        assert first == second

    def test_rerun_on_same_server_is_deterministic(self):
        trace = _trace()
        server = _server(plan=self.PLAN, ras=self.RAS)
        assert server.run(trace) == server.run(trace)

    def test_different_seed_changes_fault_pattern(self):
        trace = _trace()
        other = FaultPlan(
            seed=12,
            dma_corrupt_rate=0.01, ecc_ce_rate=0.01,
            dma_abort_rate=0.0002, ecc_ue_rate=0.0002,
        )
        first = _server(plan=self.PLAN, ras=self.RAS).run(trace)
        second = _server(plan=other, ras=self.RAS).run(trace)
        assert first != second

    def test_shared_mode_also_survives(self):
        trace = _trace()
        reports = _server(plan=self.PLAN, ras=self.RAS, isolated=False).run(trace)
        offered = {
            name: sum(1 for r in trace if r.tenant == name) for name in ("a", "b")
        }
        for name in ("a", "b"):
            report = reports[name]
            assert report.completed + report.failed + report.shed == offered[name]

    def test_retries_improve_availability(self):
        trace = _trace()
        no_retry = _server(
            plan=self.PLAN, ras=RasConfig(max_retries=0)
        ).run(trace)
        with_retry = _server(
            plan=self.PLAN, ras=RasConfig(max_retries=3)
        ).run(trace)
        assert (
            with_retry["a"].availability + with_retry["b"].availability
            >= no_retry["a"].availability + no_retry["b"].availability
        )
        assert no_retry["a"].failed + no_retry["b"].failed > 0


class TestAdmissionControl:
    def test_overload_sheds_instead_of_queueing_forever(self):
        # tenant a: 1 ms service, offered 3000/s -> 3x overload
        trace = generate_trace([TrafficPattern("a", 3000.0)], duration_s=1.0)
        unlimited = _server().run(trace)["a"]
        limited = _server(ras=RasConfig(queue_depth_limit=8)).run(trace)["a"]
        assert limited.shed > 0
        assert limited.completed + limited.shed == len(trace)
        # shedding keeps the served requests' tail latency bounded
        assert limited.p99_ms < unlimited.p99_ms

    def test_no_shedding_under_light_load(self):
        trace = generate_trace([TrafficPattern("a", 50.0)], duration_s=1.0)
        report = _server(ras=RasConfig(queue_depth_limit=8)).run(trace)["a"]
        assert report.shed == 0


class TestCircuitBreaker:
    def test_health_trips_after_threshold(self):
        health = TenantHealth(groups=3, threshold=2, min_groups=1)
        assert not health.record_failure(0)
        assert health.record_failure(0)  # second consecutive failure trips
        assert health.available == 2
        assert health.degraded
        assert health.breaker_trips == 1

    def test_success_clears_streaks(self):
        health = TenantHealth(groups=2, threshold=2, min_groups=1)
        health.record_failure(0)
        health.record_success()
        assert not health.record_failure(0)
        assert health.available == 2

    def test_never_degrades_below_floor(self):
        health = TenantHealth(groups=2, threshold=1, min_groups=1)
        assert health.record_failure(0)
        assert health.available == 1
        assert not health.record_failure(0)  # at the floor: no further trips
        assert health.available == 1

    def test_fatal_storm_degrades_but_keeps_serving(self):
        # high fatal rate: breakers trip, the slice degrades, requests
        # keep completing on the remaining groups at the degraded time.
        plan = FaultPlan(seed=5, dma_abort_rate=0.01)
        ras = RasConfig(max_retries=1, breaker_threshold=2)
        trace = generate_trace([TrafficPattern("a", 200.0)], duration_s=1.0)
        server = InferenceServer(
            _tenants(sla_a=None),
            service_times_ns=dict(SERVICE),
            degraded_service_times_ns={("a", 1): 1.8e6},
            fault_plan=plan,
            ras=ras,
        )
        report = server.run(trace)["a"]
        assert report.failed > 0
        assert report.degraded > 0  # some requests served on a degraded slice
        assert report.completed > 0
        assert report.completed + report.failed == len(trace)

    def test_degraded_service_time_defaults_to_linear_scaling(self):
        server = _server()
        assert server._service_time("a", 2) == SERVICE["a"]
        assert server._service_time("a", 1) == pytest.approx(2 * SERVICE["a"])


class TestBreakerRecovery:
    """Slot recovery + full reset: the paths fleet repair drives."""

    def _tripped(self):
        health = TenantHealth(groups=3, threshold=1, min_groups=1)
        assert health.record_failure(0)
        assert health.available == 2
        return health

    def test_restore_group_reintegrates_one_slot(self):
        health = self._tripped()
        assert health.restore_group()
        assert health.available == 3
        assert not health.degraded
        assert len(health._failures) == 3

    def test_restored_slot_rejoins_with_a_clean_streak(self):
        health = TenantHealth(groups=3, threshold=2, min_groups=1)
        health.record_failure(0)
        assert health.record_failure(0)  # trips: available 3 -> 2
        health.record_failure(0)  # streak 1 building on a surviving slot
        assert health.restore_group()
        # the rejoined slot (appended last) starts at streak 0: one
        # failure does not trip it, a second consecutive one does
        assert not health.record_failure(2)
        assert health.record_failure(2)

    def test_restore_at_full_strength_is_a_noop(self):
        health = TenantHealth(groups=2, threshold=2, min_groups=1)
        assert not health.restore_group()
        assert health.available == 2
        assert len(health._failures) == 2

    def test_restore_is_incremental(self):
        health = TenantHealth(groups=4, threshold=1, min_groups=1)
        health.record_failure(0)
        health.record_failure(0)
        assert health.available == 2
        assert health.restore_group()
        assert health.available == 3
        assert health.restore_group()
        assert health.available == 4
        assert not health.restore_group()

    def test_reset_restores_full_strength_and_clears_streaks(self):
        health = self._tripped()
        health.record_failure(0)  # partial streak on a live slot
        health.reset()
        assert health.available == health.configured == 3
        assert not health.degraded
        assert health._failures == [0, 0, 0]
        # a single failure does not instantly re-trip post-reset streaks
        health_soft = TenantHealth(groups=2, threshold=2, min_groups=1)
        health_soft.record_failure(0)
        health_soft.reset()
        assert not health_soft.record_failure(0)

    def test_reset_preserves_trip_history(self):
        health = self._tripped()
        trips = health.breaker_trips
        assert trips == 1
        health.reset()
        assert health.breaker_trips == trips  # cumulative, not state
