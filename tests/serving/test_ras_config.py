"""RasConfig field validation + the knobs it gates (backoff, deadline).

A misconfigured reliability policy must fail construction loudly with a
ReproRuntimeError naming the field — not silently serve with nonsense
retry math.
"""

import pytest

from repro.core.errors import ReproRuntimeError
from repro.serving import (
    InferenceServer,
    RasConfig,
    TenantConfig,
    TrafficPattern,
    generate_trace,
)

SERVICE = {"a": 1.0e6}


def _reports(ras):
    server = InferenceServer(
        [TenantConfig("a", "resnet50", groups=2, max_batch=1, sla_ms=None)],
        service_times_ns=dict(SERVICE),
        ras=ras,
    )
    trace = generate_trace([TrafficPattern("a", 100.0)], duration_s=0.5)
    return server.run(trace)["a"], len(trace)


class TestValidation:
    def test_defaults_are_valid(self):
        RasConfig()

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"max_retries": -1}, "max_retries"),
            ({"retry_backoff_ms": -0.1}, "retry_backoff_ms"),
            ({"backoff_factor": 0.5}, "backoff_factor"),
            ({"queue_depth_limit": 0}, "queue_depth_limit"),
            ({"breaker_threshold": 0}, "breaker_threshold"),
            ({"min_groups": 0}, "min_groups"),
            ({"transfers_per_request": 0}, "transfers_per_request"),
            ({"deadline_ms": 0.0}, "deadline_ms"),
            ({"deadline_ms": -5.0}, "deadline_ms"),
        ],
    )
    def test_bad_field_rejected_with_named_error(self, kwargs, fragment):
        with pytest.raises(ReproRuntimeError) as excinfo:
            RasConfig(**kwargs)
        message = str(excinfo.value)
        assert message.startswith("RasConfig:")
        assert fragment in message
        # the offending value is echoed back
        assert str(list(kwargs.values())[0]) in message

    def test_boundary_values_accepted(self):
        RasConfig(
            max_retries=0, retry_backoff_ms=0.0, backoff_factor=1.0,
            queue_depth_limit=1, breaker_threshold=1, min_groups=1,
            transfers_per_request=1, deadline_ms=0.001,
        )

    def test_none_disables_optional_limits(self):
        config = RasConfig(queue_depth_limit=None, deadline_ms=None)
        assert config.queue_depth_limit is None
        assert config.deadline_ms is None


class TestDeadline:
    def test_impossible_deadline_fails_every_request(self):
        # service time is 1 ms; a 0.5 ms deadline can never be met
        report, offered = _reports(RasConfig(deadline_ms=0.5))
        assert report.completed == 0
        assert report.failed == offered

    def test_loose_deadline_changes_nothing(self):
        tight, _ = _reports(RasConfig(deadline_ms=1000.0))
        free, _ = _reports(RasConfig(deadline_ms=None))
        assert tight.completed == free.completed
        assert tight.failed == free.failed == 0


class TestBackoffFactor:
    def test_flat_backoff_is_no_slower_than_exponential(self):
        # with faults forced via transfers_per_request the retry paths
        # exercise the factor; flat backoff (1.0) accrues less penalty
        from repro.faults import FaultPlan

        plan = FaultPlan(seed=3, dma_corrupt_rate=0.02)
        def run(factor):
            server = InferenceServer(
                [TenantConfig("a", "resnet50", groups=2, max_batch=1,
                              sla_ms=None)],
                service_times_ns=dict(SERVICE),
                fault_plan=plan,
                ras=RasConfig(
                    max_retries=3, retry_backoff_ms=5.0,
                    backoff_factor=factor,
                ),
            )
            trace = generate_trace(
                [TrafficPattern("a", 100.0)], duration_s=1.0
            )
            return server.run(trace)["a"]

        flat = run(1.0)
        exponential = run(4.0)
        assert flat.retried == exponential.retried  # same fault draws
        assert flat.retried > 0
        assert flat.p99_ms <= exponential.p99_ms
