"""Fleet routing fast path: heap/reference equivalence and bounded depth.

The heap router's contract is *byte-identical behavior* to the pinned
reference scans (`repro.serving.routing.ReferenceRouter`), not merely
similar routing quality. Three layers of evidence:

- a seeded 512-replica churn harness drives both routers through the
  same quarantine/promote/drain/retire mutations and asserts every query
  (pick with exclusions, hedged picks past the clock, earliest_start,
  standby, drain_victim, due_repair) returns the same replica;
- tie-break regressions pin the deterministic orderings the fleet relies
  on (equal load -> lowest index; equal repair due -> lowest index);
- a whole-scenario byte-compare replays a chaos scenario through both
  implementations and diffs the serialized ``FleetReport`` — including
  per-class ``SloClassStats`` — as JSON.

``PrunedFinishes`` is checked against the unbounded sorted-list +
``bisect_right`` depth semantics it replaced.
"""

import json
import random
from bisect import bisect_right, insort

import pytest

from repro.chaos import SCENARIOS, run_scenario
from repro.serving.routing import (
    ROUTING_ENV_VAR,
    DepthView,
    HeapRouter,
    PrunedFinishes,
    ReferenceRouter,
    ReplicaStatus,
    make_router,
    resolve_routing,
)


class FakeReplica:
    """The attribute surface the routers consume."""

    __slots__ = ("index", "status", "free_at", "repair_due_ns")

    def __init__(self, index, status=ReplicaStatus.ACTIVE):
        self.index = index
        self.status = status
        self.free_at = 0.0
        self.repair_due_ns = None


def _pair(n, standby=0):
    """Fresh (replicas, heap router, reference router) triple."""
    replicas = [FakeReplica(i) for i in range(n)]
    for replica in replicas[n - standby:]:
        replica.status = ReplicaStatus.STANDBY
    heap, reference = HeapRouter(), ReferenceRouter()
    heap.rebuild(replicas)
    reference.rebuild(replicas)
    return replicas, heap, reference


def _assert_same_pick(heap, reference, now, excluded=frozenset()):
    got = heap.pick(now, excluded)
    want = reference.pick(now, excluded)
    assert (got is None) == (want is None)
    if want is not None:
        assert got.index == want.index
    return want


# ---------------------------------------------------------------------------
# selection + config
# ---------------------------------------------------------------------------


def test_resolve_routing_precedence(monkeypatch):
    monkeypatch.delenv(ROUTING_ENV_VAR, raising=False)
    assert resolve_routing() == "heap"
    monkeypatch.setenv(ROUTING_ENV_VAR, "reference")
    assert resolve_routing() == "reference"
    # explicit argument beats the environment
    assert resolve_routing("heap") == "heap"
    monkeypatch.setenv(ROUTING_ENV_VAR, "")
    assert resolve_routing() == "heap"


def test_resolve_routing_rejects_unknown(monkeypatch):
    with pytest.raises(ValueError, match="unknown fleet routing"):
        resolve_routing("quantum")
    monkeypatch.setenv(ROUTING_ENV_VAR, "bogus")
    with pytest.raises(ValueError, match="bogus"):
        resolve_routing()


def test_make_router_returns_selected_implementation(monkeypatch):
    monkeypatch.delenv(ROUTING_ENV_VAR, raising=False)
    assert isinstance(make_router(), HeapRouter)
    assert isinstance(make_router("reference"), ReferenceRouter)


# ---------------------------------------------------------------------------
# tie-break regressions
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("router_cls", [HeapRouter, ReferenceRouter])
def test_equal_load_breaks_ties_by_lowest_index(router_cls):
    replicas = [FakeReplica(i) for i in range(8)]
    router = router_cls()
    router.rebuild(replicas)
    # all idle at t=0: lowest index must win
    assert router.pick(0.0).index == 0
    # exclusions walk up the index order, never skipping
    assert router.pick(0.0, {0}).index == 1
    assert router.pick(0.0, {0, 1, 2}).index == 3
    # equally *busy* replicas tie-break on index too
    for replica in replicas:
        replica.free_at = 100.0
        router.update(replica)
    assert router.pick(0.0).index == 0
    assert router.pick(150.0, {0}).index == 1


@pytest.mark.parametrize("router_cls", [HeapRouter, ReferenceRouter])
def test_busy_replica_loses_to_later_idle_index(router_cls):
    replicas = [FakeReplica(i) for i in range(3)]
    router = router_cls()
    router.rebuild(replicas)
    router.advance(10.0)
    replicas[0].free_at = 50.0
    router.update(replicas[0])
    # replica 0 is busy until 50; replica 1 is free now and must win
    assert router.pick(10.0).index == 1
    # at t=50 replica 0 is free again and the index tie-break resumes
    router.advance(50.0)
    assert router.pick(50.0).index == 0


@pytest.mark.parametrize("router_cls", [HeapRouter, ReferenceRouter])
def test_equal_repair_due_breaks_ties_by_lowest_index(router_cls):
    replicas = [FakeReplica(i) for i in range(4)]
    router = router_cls()
    router.rebuild(replicas)
    for replica in (replicas[3], replicas[1]):
        replica.status = ReplicaStatus.QUARANTINED
        replica.repair_due_ns = 500.0
        router.update(replica)
    due = router.due_repair(500.0)
    assert due is not None and due.index == 1


def test_hedged_pick_past_clock_does_not_corrupt_state():
    # A hedge queries at a failure time beyond the routing clock; the
    # busy/idle split must survive the out-of-band query untouched.
    replicas = [FakeReplica(i) for i in range(4)]
    heap = HeapRouter()
    heap.rebuild(replicas)
    heap.advance(0.0)
    for replica in replicas[:3]:
        replica.free_at = 30.0
        heap.update(replica)
    replicas[3].free_at = 5.0
    heap.update(replicas[3])
    # hedge at t=40 (clock still 0): everyone is free, index 0 wins
    assert heap.pick(40.0, excluded={0}).index == 1
    # the clock never moved: a pick at t=6 still sees 0..2 busy
    assert heap.pick(6.0).index == 3
    assert heap.earliest_start(6.0) == 6.0


# ---------------------------------------------------------------------------
# seeded churn equivalence (satellite c)
# ---------------------------------------------------------------------------


def test_512_replica_churn_matches_reference_byte_for_byte():
    n = 512
    rng = random.Random(0xF1EE7)
    replicas, heap, reference = _pair(n, standby=24)
    now = 0.0
    for step in range(4000):
        now += rng.expovariate(1.0) * 1e5
        heap.advance(now)
        roll = rng.random()
        if roll < 0.55:
            # route one request, sometimes with failover exclusions
            excluded = set()
            if rng.random() < 0.3:
                excluded = {rng.randrange(n) for _ in range(rng.randrange(4))}
            picked = _assert_same_pick(heap, reference, now, excluded)
            if picked is not None:
                picked.free_at = max(picked.free_at, now) + rng.random() * 4e5
                heap.update(picked)
            assert heap.earliest_start(now) == reference.earliest_start(now)
        elif roll < 0.65:
            # hedged re-dispatch beyond the clock, clock not advanced
            hedge_at = now + rng.random() * 2e5
            _assert_same_pick(heap, reference, hedge_at)
        elif roll < 0.75:
            # quarantine a random active replica, maybe schedule repair
            victim = reference.pick(now)
            if victim is not None:
                victim.status = ReplicaStatus.QUARANTINED
                victim.repair_due_ns = (
                    now + rng.random() * 8e5 if rng.random() < 0.8 else None
                )
                heap.update(victim)
        elif roll < 0.85:
            # promote the standby the fleet would promote
            spare = reference.standby()
            assert (spare is None) == (heap.standby() is None)
            if spare is not None:
                assert heap.standby().index == spare.index
                spare.status = ReplicaStatus.ACTIVE
                spare.free_at = now
                heap.update(spare)
        elif roll < 0.93:
            # repair probe: both routers must surface the same due replica
            bound = now if rng.random() < 0.7 else None
            want = reference.due_repair(bound)
            got = heap.due_repair(bound)
            assert (got is None) == (want is None)
            if want is not None:
                assert got.index == want.index
                if rng.random() < 0.6:  # repaired
                    want.status = ReplicaStatus.ACTIVE
                    want.free_at = now
                    want.repair_due_ns = None
                elif rng.random() < 0.5:  # probe failed, rescheduled
                    want.repair_due_ns = now + rng.random() * 8e5
                else:  # retired for good
                    want.status = ReplicaStatus.RETIRED
                    want.repair_due_ns = None
                heap.update(want)
        else:
            # autoscale drain of the highest-index active replica
            victim = reference.drain_victim()
            assert (victim is None) == (heap.drain_victim() is None)
            if victim is not None:
                assert heap.drain_victim().index == victim.index
                victim.status = ReplicaStatus.STANDBY
                heap.update(victim)
        assert heap.active_count() == reference.active_count()


# ---------------------------------------------------------------------------
# bounded depth tracking
# ---------------------------------------------------------------------------


def test_pruned_finishes_matches_bisect_reference():
    rng = random.Random(99)
    pruned = PrunedFinishes()
    unbounded: list[float] = []
    now = 0.0
    for _ in range(3000):
        now += rng.random() * 1e5
        for _ in range(rng.randrange(3)):
            finish = now + rng.random() * 5e5
            pruned.push(finish)
            insort(unbounded, finish)
        # historical depth semantics: finishes strictly after `now`
        want = len(unbounded) - bisect_right(unbounded, now)
        assert pruned.depth(now) == want
    # pruning actually bounds memory: entries <= now are gone
    assert len(pruned) == len(unbounded) - bisect_right(unbounded, now)


def test_pruned_finishes_boundary_is_exclusive():
    pruned = PrunedFinishes()
    pruned.push(10.0)
    pruned.push(20.0)
    # a finish exactly at `now` no longer occupies the queue
    assert pruned.depth(10.0) == 1
    assert pruned.depth(20.0) == 0
    assert len(pruned) == 0


def test_depth_view_reads_like_a_mapping():
    finishes = {"vision": PrunedFinishes(), "nlp": PrunedFinishes()}
    finishes["vision"].push(50.0)
    finishes["vision"].push(60.0)
    view = DepthView(finishes, 40.0)
    assert view.get("vision", 0) == 2
    assert view.get("nlp", 0) == 0
    assert view.get("absent", 0) == 0
    assert DepthView(finishes, 55.0).get("vision", 0) == 1


# ---------------------------------------------------------------------------
# whole-run byte equivalence (tentpole part 1)
# ---------------------------------------------------------------------------


def _suite_json(name, routing):
    result = run_scenario(SCENARIOS[name], seed=7, routing=routing)
    payload = {
        "report": result.report.to_dict(),
        "violations": result.violations,
        "sweep": result.sweep,
    }
    return json.dumps(payload, sort_keys=True)


@pytest.mark.parametrize("scenario", ["replica-kill", "flash-crowd"])
def test_chaos_scenario_reports_byte_identical(scenario):
    assert _suite_json(scenario, "heap") == _suite_json(scenario, "reference")


def test_fleet_env_var_selects_reference(monkeypatch):
    from repro.serving.fleet import FleetConfig, FleetManager
    from repro.serving.server import TenantConfig

    monkeypatch.setenv(ROUTING_ENV_VAR, "reference")
    fleet = FleetManager(
        [TenantConfig("a", "resnet50", groups=1)],
        config=FleetConfig(replicas=1, validate_on_open=False),
        service_times_ns={"a": 1.0e6},
    )
    assert fleet.routing == "reference"
    assert isinstance(fleet._router, ReferenceRouter)
    monkeypatch.delenv(ROUTING_ENV_VAR)
    assert FleetManager(
        [TenantConfig("a", "resnet50", groups=1)],
        config=FleetConfig(replicas=1, validate_on_open=False),
        service_times_ns={"a": 1.0e6},
        routing="heap",
    ).routing == "heap"
