"""Fleet SDC defense: config, conserved ledger, routing, containment.

Exercises :mod:`repro.serving.sdc` directly and through
:class:`~repro.serving.fleet.FleetManager`: the detached path stays
byte-identical, the defended fleet serves zero corrupted results where
the undefended control serves them all, and every injected event lands
in exactly one ledger bucket.
"""

import json

import pytest

from repro.core.errors import ReproRuntimeError
from repro.faults import FaultPlan, FaultSchedule, StormPhase
from repro.obs import Observability
from repro.serving import (
    FleetConfig,
    FleetManager,
    RasConfig,
    TenantConfig,
    TrafficPattern,
    generate_trace,
)
from repro.serving.routing import FleetRouter
from repro.serving.sdc import SdcAwareRouter, SdcConfig, SdcTracker

SILENT_STORM = FaultSchedule(
    phases=(
        StormPhase(
            0.05, 0.4, FaultPlan(sdc_gemm_rate=0.008, sdc_dma_rate=0.004)
        ),
    )
)
DEFENDED = SdcConfig(
    abft="strict",
    screen_interval_ms=40.0,
    screen_vectors=2,
    audit_fraction=0.2,
    quarantine_threshold=2,
    retire_after=8,
)


def _fleet(sdc=None, schedule=None, config=None, obs=None):
    return FleetManager(
        [TenantConfig("a", "resnet50", groups=2, max_batch=1, sla_ms=50.0)],
        config=config
        or FleetConfig(replicas=2, hot_spares=1, validate_on_open=False),
        schedule=schedule,
        ras=RasConfig(max_retries=2, queue_depth_limit=64),
        obs=obs,
        service_times_ns={"a": 1.0e6},
        sdc=sdc,
    )


def _trace(seed=0, rate=300.0, duration=0.5):
    return generate_trace(
        [TrafficPattern("a", rate)], duration_s=duration, seed=seed
    )


def _dump(report):
    return json.dumps(report.to_dict(), sort_keys=True)


class TestSdcConfigValidation:
    def test_defaults_are_fully_detached(self):
        config = SdcConfig()
        assert not config.checking
        assert config.screen_interval_ms is None
        assert config.audit_fraction == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"abft": "fuzzy"},
            {"probe_coverage": 1.5},
            {"probe_coverage": -0.1},
            {"abft_overhead": 0.5},
            {"screen_interval_ms": 0.0},
            {"screen_interval_ms": -1.0},
            {"screen_vectors": 0},
            {"screen_cost_ms": -1.0},
            {"audit_fraction": 1.5},
            {"quarantine_threshold": 0},
            {"retire_after": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ReproRuntimeError, match="SdcConfig"):
            SdcConfig(**kwargs)


class TestSdcTrackerLedger:
    @staticmethod
    def _tracker(config=None, schedule=None):
        return SdcTracker(
            config or DEFENDED,
            seed=0,
            schedule=schedule or SILENT_STORM,
            replica_names=["r0", "r1"],
            events_per_request=16,
        )

    def test_quiet_schedule_draws_nothing(self):
        tracker = self._tracker(schedule=FaultSchedule())
        for _ in range(50):
            assert not tracker.attempt_corrupted("r0", 0, 0.2e9, 16)
        assert tracker.injected == 0

    def test_every_event_lands_in_exactly_one_bucket(self):
        tracker = self._tracker()
        inside = 0.2e9  # mid-storm
        for attempt in range(200):
            if not tracker.attempt_corrupted("r0", 0, inside, 16):
                continue
            if tracker.abft_detects("r0"):
                tracker.note_detection(0, "abft", latency_ms=0.5)
            else:
                tracker.note_served(0, inside)
        assert tracker.injected > 0
        section = tracker.build_section()
        assert section["detected_total"] == sum(
            section["detected"].values()
        )
        assert (
            section["detected_total"] + section["served_corrupted"]
            == section["injected"]
        )

    def test_strict_abft_consumes_no_randomness(self):
        tracker = self._tracker()
        for _ in range(10):
            assert tracker.abft_detects("r0")  # strict always catches
        # The replica's sdc stream is untouched by strict checking: the
        # next corruption draw matches a fresh tracker's first draw.
        fresh = self._tracker()
        assert tracker.attempt_corrupted(
            "r0", 0, 0.2e9, 16
        ) == fresh.attempt_corrupted("r0", 0, 0.2e9, 16)

    def test_detections_escalate_to_quarantine_then_retire(self):
        tracker = self._tracker(
            config=SdcConfig(quarantine_threshold=2, retire_after=3)
        )
        tracker.note_detection(1, "abft")
        assert tracker.take_actions() == []
        tracker.note_detection(1, "abft")
        assert tracker.take_actions() == [(1, "quarantine")]
        tracker.note_detection(1, "abft")
        assert tracker.take_actions() == [(1, "retire")]
        assert tracker.suspected_frozen() == frozenset({1})

    def test_clean_screen_clears_suspicion(self):
        tracker = self._tracker()
        tracker.note_detection(0, "abft")
        assert 0 in tracker.suspected_frozen()
        # outside the storm window the screen finds nothing and clears
        corrupted = tracker.screen_replica("r0", 0, now_ns=0.45e9)
        assert corrupted == 0
        assert tracker.suspected_frozen() == frozenset()

    def test_dirty_screen_resolves_served_events_without_revising(self):
        tracker = self._tracker(
            config=SdcConfig(screen_interval_ms=10.0, screen_vectors=8)
        )
        tracker.note_served(0, 0.1e9)
        served_before = tracker.served_corrupted
        # deep in the storm with 8 vectors, a detection is near-certain
        corrupted = 0
        now = 0.2e9
        while corrupted == 0:
            corrupted = tracker.screen_replica("r0", 0, now_ns=now)
            now += 1e6
        assert tracker.resolution_latencies_ms  # conviction recorded
        assert tracker.served_corrupted == served_before  # never revised


class _StubRouter(FleetRouter):
    """Deterministic inner router: lowest allowed index wins."""

    name = "stub"

    def __init__(self, indexes):
        self.indexes = list(indexes)
        self.rebuilds = 0

    def rebuild(self, replicas):
        self.rebuilds += 1

    def pick(self, now, excluded=frozenset()):
        for index in self.indexes:
            if index not in excluded:
                return index
        return None


class TestSdcAwareRouter:
    def test_suspected_replicas_are_softly_avoided(self):
        router = SdcAwareRouter(_StubRouter([0, 1, 2]))
        assert router.pick(0.0) == 0
        router.set_suspected(frozenset({0}))
        assert router.pick(0.0) == 1

    def test_falls_back_when_everyone_is_suspect(self):
        router = SdcAwareRouter(_StubRouter([0, 1]))
        router.set_suspected(frozenset({0, 1}))
        assert router.pick(0.0) == 0  # still serves

    def test_exclusions_compose_with_suspicion(self):
        router = SdcAwareRouter(_StubRouter([0, 1, 2]))
        router.set_suspected(frozenset({1}))
        assert router.pick(0.0, excluded=frozenset({0})) == 2

    def test_rebuild_resets_suspicion(self):
        inner = _StubRouter([0, 1])
        router = SdcAwareRouter(inner)
        router.set_suspected(frozenset({0}))
        router.rebuild([])
        assert router.suspected == frozenset()
        assert inner.rebuilds == 1


class TestFleetIntegration:
    def test_detached_fleet_report_has_no_sdc_section(self):
        report = _fleet().run(_trace())
        assert report.sdc is None
        assert "sdc" not in report.to_dict()

    def test_inert_config_leaves_request_outcomes_untouched(self):
        # An attached-but-idle defense (no silent rates, no checking)
        # must not shift any serving stream.
        detached = _fleet().run(_trace()).to_dict()
        attached = _fleet(sdc=SdcConfig()).run(_trace()).to_dict()
        section = attached.pop("sdc")
        assert section["injected"] == 0
        assert attached == detached

    def test_defended_fleet_serves_zero_corrupted(self):
        report = _fleet(sdc=DEFENDED, schedule=SILENT_STORM).run(_trace())
        sdc = report.sdc
        assert sdc["injected"] > 0
        assert sdc["served_corrupted"] == 0
        assert sdc["detected_total"] == sdc["injected"]

    def test_undefended_control_serves_every_corruption(self):
        report = _fleet(sdc=SdcConfig(), schedule=SILENT_STORM).run(_trace())
        sdc = report.sdc
        assert sdc["injected"] > 0
        assert sdc["served_corrupted"] == sdc["injected"]
        assert sdc["detected_total"] == 0

    def test_probe_mode_with_full_coverage_matches_strict_pledge(self):
        config = SdcConfig(abft="probe", probe_coverage=1.0)
        report = _fleet(sdc=config, schedule=SILENT_STORM).run(_trace())
        assert report.sdc["injected"] > 0
        assert report.sdc["served_corrupted"] == 0

    def test_screens_and_audits_run_and_are_counted(self):
        report = _fleet(sdc=DEFENDED, schedule=SILENT_STORM).run(_trace())
        sdc = report.sdc
        assert sdc["screens_run"] > 0
        assert sdc["audits_run"] > 0
        assert sdc["screen_detections"] == sdc["detected"]["screen"]
        assert sdc["audit_detections"] == sdc["detected"]["audit"]

    def test_defended_run_is_byte_deterministic(self):
        first = _fleet(sdc=DEFENDED, schedule=SILENT_STORM).run(_trace())
        second = _fleet(sdc=DEFENDED, schedule=SILENT_STORM).run(_trace())
        assert _dump(first) == _dump(second)

    def test_obs_counters_match_the_report(self):
        obs = Observability()
        report = _fleet(
            sdc=DEFENDED, schedule=SILENT_STORM, obs=obs
        ).run(_trace())
        sdc = report.sdc
        metrics = obs.metrics
        assert metrics.counter(
            "sdc_injected_total", ""
        ).total() == float(sdc["injected"])
        assert metrics.counter(
            "sdc_served_total", ""
        ).total() == float(sdc["served_corrupted"])
        detected = metrics.counter("sdc_detected_total", "")
        for method, count in sdc["detected"].items():
            assert detected.value(method=method) == float(count)

    def test_repeated_detections_quarantine_the_replica(self):
        schedule = FaultSchedule(
            phases=(
                StormPhase(
                    0.05, 0.3, FaultPlan(sdc_gemm_rate=0.05), devices=(1,)
                ),
            )
        )
        report = _fleet(sdc=DEFENDED, schedule=schedule).run(_trace())
        assert report.sdc["quarantines"] >= 1
        assert "quarantined" in report.transitions("r1")
        assert "quarantined" not in report.transitions("r0")


class TestRepairProbeScreens:
    KILL = FaultSchedule(
        phases=(StormPhase.kill(device=1, at_s=0.15, duration_s=0.2),)
    )

    @staticmethod
    def _config(screen_vectors):
        return FleetConfig(
            replicas=2, hot_spares=1, quarantine_threshold=2,
            repair_ms=60.0, screen_vectors=screen_vectors,
            validate_on_open=False,
        )

    def test_default_config_is_the_legacy_single_vector_probe(self):
        # screen_vectors=1 must be byte-identical to the historical
        # default — same probe seeds, same report.
        legacy = _fleet(config=self._config(1), schedule=self.KILL)
        default_cfg = FleetConfig(
            replicas=2, hot_spares=1, quarantine_threshold=2,
            repair_ms=60.0, validate_on_open=False,
        )
        default = _fleet(config=default_cfg, schedule=self.KILL)
        assert _dump(legacy.run(_trace())) == _dump(default.run(_trace()))

    def test_multi_vector_probe_still_repairs_after_the_storm(self):
        report = _fleet(config=self._config(3), schedule=self.KILL).run(
            _trace()
        )
        transitions = report.transitions("r1")
        assert "quarantined" in transitions
        assert "repaired" in transitions
        assert any(
            "3 probe vectors clean" in event.detail
            for event in report.events
            if event.kind == "repaired"
        )

    def test_probe_corruption_screen_blocks_lying_boards(self):
        # Device 1 corrupts silently (nothing raises) for most of the
        # run: ABFT detections quarantine it, and because a probe launch
        # on a silently-lying board comes back clean, only the probe's
        # corruption screen can keep it from reintegrating mid-storm.
        schedule = FaultSchedule(
            phases=(
                StormPhase(
                    0.05, 0.45, FaultPlan(sdc_gemm_rate=0.9), devices=(1,)
                ),
            )
        )
        report = _fleet(
            config=self._config(3), schedule=schedule, sdc=DEFENDED
        ).run(_trace())
        screened = [
            event for event in report.events
            if event.kind == "repair_failed"
            and "probe screen caught silent corruption" in event.detail
        ]
        assert screened
