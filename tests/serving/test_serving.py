"""Tests for the cloud-serving simulation (workload, queueing, isolation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.serving import (
    InferenceServer,
    Request,
    TenantConfig,
    TrafficPattern,
    batch_service_time_ns,
    generate_trace,
)

SERVICE = {"a": 1.0e6, "b": 10.0e6}  # 1 ms and 10 ms service times


def _tenants(max_batch_a=1, sla_a=None):
    return [
        TenantConfig("a", "resnet50", groups=1, max_batch=max_batch_a, sla_ms=sla_a),
        TenantConfig("b", "unet", groups=3),
    ]


def _server(isolated=True, **kwargs):
    return InferenceServer(
        _tenants(**kwargs), isolated=isolated, service_times_ns=dict(SERVICE)
    )


class TestWorkload:
    def test_trace_sorted_and_deterministic(self):
        patterns = [TrafficPattern("a", 100.0), TrafficPattern("b", 50.0)]
        first = generate_trace(patterns, duration_s=1.0, seed=7)
        second = generate_trace(patterns, duration_s=1.0, seed=7)
        assert first == second
        arrivals = [request.arrival_ns for request in first]
        assert arrivals == sorted(arrivals)

    def test_rate_approximately_respected(self):
        trace = generate_trace([TrafficPattern("a", 200.0)], duration_s=5.0)
        assert 800 < len(trace) < 1200  # ~1000 expected

    def test_different_seeds_differ(self):
        patterns = [TrafficPattern("a", 100.0)]
        assert generate_trace(patterns, 1.0, seed=1) != generate_trace(
            patterns, 1.0, seed=2
        )

    def test_bursty_preserves_mean_rate_roughly(self):
        smooth = generate_trace([TrafficPattern("a", 200.0)], 5.0)
        bursty = generate_trace(
            [TrafficPattern("a", 200.0, burstiness=4.0)], 5.0
        )
        assert 0.4 < len(bursty) / len(smooth) < 2.5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TrafficPattern("a", -1.0)
        with pytest.raises(ValueError):
            TrafficPattern("a", 10.0, burstiness=0.5)
        with pytest.raises(ValueError):
            generate_trace([TrafficPattern("a", 10.0)], duration_s=0.0)

    def test_zero_rate_pattern_generates_nothing(self):
        trace = generate_trace(
            [TrafficPattern("a", 0.0), TrafficPattern("b", 50.0)],
            duration_s=1.0, seed=3,
        )
        assert trace
        assert all(request.tenant == "b" for request in trace)


class TestBatchScaling:
    def test_batch_time_sublinear(self):
        base = 1.0e6
        assert batch_service_time_ns(base, 1) == base
        per_sample_8 = batch_service_time_ns(base, 8) / 8
        assert per_sample_8 < base

    def test_batch_time_monotone_total(self):
        base = 1.0e6
        totals = [batch_service_time_ns(base, batch) for batch in (1, 2, 4, 8)]
        assert totals == sorted(totals)

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            batch_service_time_ns(1.0, 0)


class TestQueueing:
    def test_idle_server_latency_equals_service_time(self):
        # At 5 req/s vs a 1 ms service time, the median request finds the
        # server idle (occasional Poisson clumps may queue the tail).
        trace = generate_trace([TrafficPattern("a", 5.0)], duration_s=2.0)
        report = _server().run(trace)["a"]
        assert report.p50_ms == pytest.approx(1.0, rel=0.01)

    def test_overload_queues_grow(self):
        # service 1 ms -> capacity 1000/s; offer 2000/s
        trace = generate_trace([TrafficPattern("a", 2000.0)], duration_s=1.0)
        report = _server().run(trace)["a"]
        assert report.p99_ms > 10.0

    def test_batching_restores_overloaded_tenant(self):
        trace = generate_trace([TrafficPattern("a", 2000.0)], duration_s=1.0)
        unbatched = _server().run(trace)["a"]
        batched = _server(max_batch_a=8).run(trace)["a"]
        assert batched.p99_ms < unbatched.p99_ms
        assert batched.mean_batch > 1.5

    def test_sla_accounting(self):
        trace = generate_trace([TrafficPattern("a", 2000.0)], duration_s=1.0)
        report = _server(sla_a=2.0).run(trace)["a"]
        assert report.sla_violations > 0
        assert 0 < report.sla_violation_rate <= 1.0

    def test_all_requests_complete(self):
        trace = generate_trace(
            [TrafficPattern("a", 300.0), TrafficPattern("b", 20.0)],
            duration_s=1.0,
        )
        reports = _server().run(trace)
        assert reports["a"].completed + reports["b"].completed == len(trace)


class TestSharedQueueBatching:
    """Shared mode honours max_batch by coalescing same-tenant waiters."""

    def test_shared_mode_batches_under_load(self):
        trace = generate_trace([TrafficPattern("a", 2000.0)], duration_s=1.0)
        report = _server(isolated=False, max_batch_a=8).run(trace)["a"]
        assert report.mean_batch > 1.5

    def test_shared_batching_cuts_tail_latency(self):
        trace = generate_trace([TrafficPattern("a", 2000.0)], duration_s=1.0)
        unbatched = _server(isolated=False).run(trace)["a"]
        batched = _server(isolated=False, max_batch_a=8).run(trace)["a"]
        assert batched.p99_ms < unbatched.p99_ms

    def test_shared_max_batch_respected(self):
        trace = generate_trace([TrafficPattern("a", 3000.0)], duration_s=0.5)
        server = _server(isolated=False, max_batch_a=4)
        completed, _ = server._run_shared_queue(trace)
        assert max(record.batch_size for record in completed) <= 4
        assert len(completed) == len(trace)

    def test_shared_batching_never_reorders_other_tenants(self):
        trace = generate_trace(
            [TrafficPattern("a", 1500.0), TrafficPattern("b", 50.0)],
            duration_s=0.5,
        )
        reports = _server(isolated=False, max_batch_a=8).run(trace)
        assert reports["a"].completed + reports["b"].completed == len(trace)


class TestThroughputHorizon:
    """Throughput uses the service horizon (max finish), not last arrival."""

    def test_backlogged_burst_uses_finish_horizon(self):
        # 20 requests all arrive in the first microsecond; service is
        # 10 ms each, so the run actually spans ~200 ms.  Dividing by the
        # last *arrival* would report a ~million-requests/s throughput.
        trace = [
            Request(request_id=i, tenant="b", arrival_ns=float(i))
            for i in range(20)
        ]
        report = _server().run(trace)["b"]
        assert report.completed == 20
        assert report.throughput_per_s == pytest.approx(20 / 0.2, rel=0.01)

    def test_horizon_is_max_finish_over_all_tenants(self):
        # tenant a finishes fast, tenant b drags the horizon out
        trace = [
            Request(request_id=0, tenant="a", arrival_ns=0.0),
            Request(request_id=1, tenant="b", arrival_ns=0.0),
        ]
        reports = _server().run(trace)
        # horizon = 10 ms (tenant b's single service)
        assert reports["a"].throughput_per_s == pytest.approx(100.0, rel=0.01)
        assert reports["b"].throughput_per_s == pytest.approx(100.0, rel=0.01)

    def test_empty_trace_reports_zero_throughput(self):
        reports = _server().run([])
        assert reports["a"].completed == 0
        assert reports["a"].throughput_per_s == 0.0


class TestIsolation:
    """§IV-E: isolation prevents cross-tenant interference."""

    def _trace(self):
        return generate_trace(
            [TrafficPattern("a", 300.0), TrafficPattern("b", 60.0)],
            duration_s=1.0,
        )

    def test_shared_queue_inflates_light_tenant_p99(self):
        trace = self._trace()
        isolated = _server(isolated=True).run(trace)["a"]
        shared = _server(isolated=False).run(trace)["a"]
        assert shared.p99_ms > 3 * isolated.p99_ms

    def test_isolated_light_tenant_unaffected_by_heavy_load(self):
        light_only = generate_trace([TrafficPattern("a", 300.0)], 1.0)
        both = self._trace()
        alone = _server(isolated=True).run(light_only)["a"]
        with_neighbor = _server(isolated=True).run(both)["a"]
        assert with_neighbor.p99_ms == pytest.approx(alone.p99_ms, rel=0.15)

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ValueError):
            InferenceServer(
                [TenantConfig("a", "resnet50", 1), TenantConfig("a", "unet", 1)],
                service_times_ns={"a": 1.0},
            )

    def test_empty_tenant_list_rejected(self):
        with pytest.raises(ValueError):
            InferenceServer([])


@settings(max_examples=20, deadline=None)
@given(
    rate=st.floats(min_value=10.0, max_value=1500.0),
    seed=st.integers(0, 100),
    max_batch=st.integers(1, 8),
)
def test_property_queueing_invariants(rate, seed, max_batch):
    """No time travel: every request starts after arrival and after the
    previous service on its queue; latency >= service time."""
    server = InferenceServer(
        [TenantConfig("a", "resnet50", 1, max_batch=max_batch)],
        service_times_ns={"a": 1.0e6},
    )
    trace = generate_trace([TrafficPattern("a", rate)], duration_s=0.5, seed=seed)
    if not trace:
        return
    completed, shed = server._run_single_queue(trace, "a")
    assert not shed  # no admission limit configured
    assert len(completed) == len(trace)
    last_finish = 0.0
    seen_starts = []
    for record in sorted(completed, key=lambda c: (c.start_ns, c.request.request_id)):
        assert record.start_ns >= record.request.arrival_ns - 1e-9
        assert record.finish_ns > record.start_ns
        assert record.latency_ms >= 0
        seen_starts.append(record.start_ns)
    assert seen_starts == sorted(seen_starts)
