"""Dedicated coverage for workload generation (`repro.serving.workload`)."""

import statistics

import pytest

from repro.serving import Request, TrafficPattern, generate_trace


def _gaps(trace):
    arrivals = [request.arrival_ns for request in trace]
    return [b - a for a, b in zip(arrivals, arrivals[1:])]


class TestTraceShape:
    def test_time_sorted(self):
        trace = generate_trace(
            [TrafficPattern("a", 500.0), TrafficPattern("b", 200.0)],
            duration_s=1.0,
        )
        arrivals = [request.arrival_ns for request in trace]
        assert arrivals == sorted(arrivals)

    def test_request_ids_unique(self):
        trace = generate_trace(
            [TrafficPattern("a", 500.0), TrafficPattern("b", 200.0)],
            duration_s=1.0,
        )
        ids = [request.request_id for request in trace]
        assert len(set(ids)) == len(ids)

    def test_arrivals_within_duration(self):
        trace = generate_trace([TrafficPattern("a", 1000.0)], duration_s=0.25)
        assert all(0.0 < r.arrival_ns <= 0.25e9 for r in trace)

    def test_tenants_labelled(self):
        trace = generate_trace(
            [TrafficPattern("a", 300.0), TrafficPattern("b", 300.0)],
            duration_s=1.0,
        )
        assert {request.tenant for request in trace} == {"a", "b"}

    def test_requests_are_immutable(self):
        request = Request(request_id=0, tenant="a", arrival_ns=1.0)
        with pytest.raises(AttributeError):
            request.arrival_ns = 2.0


class TestDeterminism:
    PATTERNS = [TrafficPattern("a", 400.0), TrafficPattern("b", 100.0)]

    def test_same_seed_identical(self):
        first = generate_trace(self.PATTERNS, duration_s=2.0, seed=3)
        second = generate_trace(self.PATTERNS, duration_s=2.0, seed=3)
        assert first == second

    def test_distinct_across_seeds(self):
        traces = {
            tuple(r.arrival_ns for r in generate_trace(self.PATTERNS, 1.0, seed=s))
            for s in range(5)
        }
        assert len(traces) == 5


class TestStatistics:
    def test_mean_rate_within_tolerance(self):
        # 500/s over 10 s -> 5000 expected; Poisson sd ~71, use 5 sd.
        trace = generate_trace([TrafficPattern("a", 500.0)], duration_s=10.0)
        assert abs(len(trace) - 5000) < 360

    def test_bursty_mean_rate_preserved(self):
        bursty = generate_trace(
            [TrafficPattern("a", 500.0, burstiness=4.0)], duration_s=10.0
        )
        assert 0.5 < len(bursty) / 5000 < 2.0

    def test_burstiness_increases_gap_variance(self):
        smooth = generate_trace([TrafficPattern("a", 500.0)], duration_s=10.0)
        bursty = generate_trace(
            [TrafficPattern("a", 500.0, burstiness=8.0)], duration_s=10.0
        )
        # Compare squared coefficient of variation so the comparison is
        # scale-free even if realised rates differ slightly.
        def cv2(trace):
            gaps = _gaps(trace)
            mean = statistics.fmean(gaps)
            return statistics.pvariance(gaps) / mean**2

        assert cv2(bursty) > 1.5 * cv2(smooth)

    def test_poisson_gap_cv_near_one(self):
        trace = generate_trace([TrafficPattern("a", 500.0)], duration_s=10.0)
        gaps = _gaps(trace)
        mean = statistics.fmean(gaps)
        cv2 = statistics.pvariance(gaps) / mean**2
        assert 0.8 < cv2 < 1.25


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            TrafficPattern("a", -5.0)

    def test_zero_rate_allowed_and_silent(self):
        pattern = TrafficPattern("a", 0.0)
        assert generate_trace([pattern], duration_s=1.0, seed=1) == []
        # A zero-rate tenant doesn't perturb the other tenants' streams.
        with_zero = generate_trace(
            [pattern, TrafficPattern("b", 100.0)], duration_s=1.0, seed=1
        )
        assert all(request.tenant == "b" for request in with_zero)

    def test_sub_poisson_burstiness_rejected(self):
        with pytest.raises(ValueError):
            TrafficPattern("a", 10.0, burstiness=0.99)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            generate_trace([TrafficPattern("a", 10.0)], duration_s=0.0)

    def test_empty_patterns_give_empty_trace(self):
        assert generate_trace([], duration_s=1.0) == []


class TestEdgeCases:
    def test_single_request_trace_serves_cleanly(self):
        # A rate/duration combo that usually yields very few arrivals:
        # whatever it yields must be id-ordered from 0 and class-stamped.
        trace = generate_trace(
            [TrafficPattern("a", 1.0, slo_class="interactive")],
            duration_s=1.0, seed=11,
        )
        assert [request.request_id for request in trace] == list(
            range(len(trace))
        )
        assert all(request.slo_class == "interactive" for request in trace)

    def test_same_seed_byte_identical(self):
        patterns = [
            TrafficPattern("a", 150.0, burstiness=2.0),
            TrafficPattern("b", 75.0, slo_class="batch"),
        ]
        first = generate_trace(patterns, duration_s=2.0, seed=42)
        second = generate_trace(patterns, duration_s=2.0, seed=42)
        assert repr(first) == repr(second)
        assert [r.arrival_ns for r in first] == [r.arrival_ns for r in second]
