"""Fast engine vs pinned reference engine: byte-identical, not merely close.

The fast :class:`repro.sim.kernel.Simulator` batches same-timestamp
wakeups, interns :class:`Timeout` objects and counts dispatches; the
:class:`repro.sim.kernel_reference.ReferenceSimulator` is the original
one-pop-per-event loop. Both implement the same scheduling contract
(docs/sim-internals.md): the queue is ordered by ``(time, sequence)``,
ties resolve in scheduling order, never by object identity. These tests
enforce the contract two ways:

- property tests over seeded random process soups (timers, resource
  contention, ``AllOf`` joins, deliberate timestamp ties) must produce
  identical event logs and final clocks on both engines;
- full executor launches through ``REPRO_SIM_ENGINE`` must produce
  byte-identical traces, counters and latencies.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.kernel import (
    AllOf,
    Resource,
    Simulator,
    Timeout,
    make_simulator,
)
from repro.sim.kernel_reference import ReferenceSimulator
from repro.sim.trace import Interval


# ---------------------------------------------------------------------------
# seeded random process soups
# ---------------------------------------------------------------------------


def _scripts(seed: int) -> list[list[tuple[str, float]]]:
    """Deterministic per-worker op scripts; shared by both engine runs.

    Delays are drawn from a small pool on purpose: repeated values force
    same-timestamp ties (exercising the fast engine's batched drain and
    the tie-break rule) and Timeout-interning hits.
    """
    rng = random.Random(seed)
    pool = [0.0, 1.0, 1.0, 2.5, 4.0, round(rng.uniform(0.1, 9.9), 3)]
    scripts = []
    for _ in range(8):
        script = [
            (rng.choice(["sleep", "acquire", "join", "signal"]), rng.choice(pool))
            for _ in range(rng.randint(3, 12))
        ]
        scripts.append(script)
    return scripts


def _run_soup(sim, seed: int):
    """Run the seeded soup on ``sim``; returns (final_time, event_log)."""
    log: list[tuple[float, int, str]] = []
    port = Resource(sim, capacity=2, name="port")

    def worker(wid: int, script):
        for op, delay in script:
            if op == "sleep":
                yield Timeout(delay)
            elif op == "acquire":
                grant = port.request()
                yield grant
                yield Timeout(delay)
                port.release()
            elif op == "join":
                # two timers at the same timestamp: a guaranteed tie
                yield AllOf([sim.timer(delay), sim.timer(delay)])
            elif op == "signal":
                yield sim.timer(delay, value=wid)
            log.append((sim.now, wid, op))

    for wid, script in enumerate(_scripts(seed)):
        sim.spawn(worker(wid, script), name=f"w{wid}")
    final = sim.run()
    return final, log


@pytest.mark.parametrize("seed", range(12))
def test_random_soups_identical_on_both_engines(seed):
    fast_final, fast_log = _run_soup(Simulator(), seed)
    ref_final, ref_log = _run_soup(ReferenceSimulator(), seed)
    assert fast_final == ref_final  # exact float equality, no tolerance
    assert fast_log == ref_log


@pytest.mark.parametrize("seed", [0, 7])
def test_random_soups_identical_under_run_until(seed):
    """Capping the clock mid-soup must stop both engines identically."""
    fast, ref = Simulator(), ReferenceSimulator()
    fast_log: list = []
    ref_log: list = []
    for sim, log in ((fast, fast_log), (ref, ref_log)):
        port = Resource(sim, capacity=1, name="port")

        def worker(wid, sim=sim, log=log, port=port):
            for delay in (1.0, 1.0, 2.0, 0.5):
                grant = port.request()
                yield grant
                yield Timeout(delay + wid * 0.25)
                port.release()
                log.append((sim.now, wid))

        for wid in range(6):
            sim.spawn(worker(wid), name=f"w{wid}")
        sim.run(until=2.75)
    assert fast.now == ref.now == 2.75
    assert fast_log == ref_log


# ---------------------------------------------------------------------------
# tie-breaking: (time, sequence) order, never object identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_same_timestamp_wakeups_resolve_in_scheduling_order(engine):
    sim = make_simulator(engine)
    order: list[int] = []

    def sleeper(wid: int):
        yield Timeout(5.0)
        order.append(wid)

    for wid in range(16):
        sim.spawn(sleeper(wid), name=f"s{wid}")
    sim.run()
    assert order == list(range(16))


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_interleaved_timer_ties_fire_in_scheduling_order(engine):
    """Timers scheduled from different processes at one timestamp fire in
    the order they were scheduled, not in object-identity order."""
    sim = make_simulator(engine)
    fired: list[str] = []

    def scheduler(tag: str):
        event = sim.timer(3.0, value=tag)
        got = yield event
        fired.append(got)

    for tag in ["a", "b", "c", "d"]:
        sim.spawn(scheduler(tag), name=tag)
    sim.run()
    assert fired == ["a", "b", "c", "d"]


def test_interval_order_is_time_and_sequence_only():
    """Interval comparison must be a pure (start, end, seq) key."""
    a = Interval("mxu", "k0", 1.0, 2.0, seq=0)
    b = Interval("vpu", "k1", 1.0, 2.0, seq=1)
    clone = Interval("dma", "k2", 1.0, 2.0, seq=0)
    assert a < b and not b < a
    # identical keys: neither orders before the other, whatever id() says
    assert not a < clone and not clone < a
    assert a <= clone and clone <= a
    assert sorted([b, a]) == [a, b]
    # equal keys sort stably: input order, never id() order
    assert [i._key() for i in sorted([b, clone, a])] == [
        (1.0, 2.0, 0), (1.0, 2.0, 0), (1.0, 2.0, 1),
    ]


def test_trace_record_assigns_monotonic_seq():
    from repro.sim.trace import Trace

    trace = Trace()
    for index in range(5):
        trace.record("mxu", "k", 1.0, 2.0)  # identical times on purpose
    assert [interval.seq for interval in trace.intervals] == list(range(5))
    assert sorted(trace.intervals) == trace.intervals


# ---------------------------------------------------------------------------
# full executor launches
# ---------------------------------------------------------------------------


def _launch(model: str):
    """One cold-device launch; returns everything comparable about it."""
    from repro.models.zoo import build
    from repro.runtime.runtime import Device

    device = Device.open("i20")
    result = device.launch(device.compile(build(model), batch=1))
    accelerator = device.accelerator
    trace = accelerator.trace
    return {
        "latency_ms": result.latency_ms,
        "now": accelerator.sim.now,
        "intervals": [
            (i.engine, i.label, i.start, i.end, i.seq) for i in trace.intervals
        ],
        "counters": dict(trace.counters),
    }


@pytest.mark.parametrize("model", ["resnet50", "bert_large"])
def test_full_launch_byte_identical_across_engines(model, monkeypatch):
    monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
    fast = _launch(model)
    monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
    reference = _launch(model)
    assert fast["latency_ms"] == reference["latency_ms"]
    assert fast["now"] == reference["now"]
    assert fast["counters"] == reference["counters"]
    assert fast["intervals"] == reference["intervals"]


def test_dispatch_accounting_lines_up_between_engines():
    """Both engines dispatch the same number of wakeups on one workload."""
    fast_final, _ = _run_soup(fast := Simulator(), seed=3)
    ref_final, _ = _run_soup(ref := ReferenceSimulator(), seed=3)
    assert fast_final == ref_final
    assert fast.events_dispatched == ref.events_dispatched
    # the fast engine additionally counts distinct clock steps
    assert 0 < fast.time_steps <= fast.events_dispatched
