"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, Resource, SimulationError, Simulator, Timeout


def test_empty_simulator_runs_to_zero():
    sim = Simulator()
    assert sim.run() == 0.0


def test_single_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def process(sim):
        yield Timeout(42.0)
        seen.append(sim.now)

    sim.spawn(process(sim))
    sim.run()
    assert seen == [42.0]


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    marks = []

    def process(sim):
        for delay in (10.0, 5.0, 2.5):
            yield Timeout(delay)
            marks.append(sim.now)

    sim.spawn(process(sim))
    sim.run()
    assert marks == [10.0, 15.0, 17.5]


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def process(name, delay):
        yield Timeout(delay)
        order.append(name)
        yield Timeout(delay)
        order.append(name)

    sim.spawn(process("a", 3.0))
    sim.spawn(process("b", 2.0))
    sim.run()
    assert order == ["b", "a", "b", "a"]


def test_tie_break_is_spawn_order():
    sim = Simulator()
    order = []

    def process(name):
        yield Timeout(7.0)
        order.append(name)

    for name in ("first", "second", "third"):
        sim.spawn(process(name))
    sim.run()
    assert order == ["first", "second", "third"]


def test_event_wakes_waiter_with_value():
    sim = Simulator()
    received = []
    gate = sim.event("gate")

    def waiter():
        value = yield gate
        received.append((sim.now, value))

    def firer():
        yield Timeout(9.0)
        gate.succeed("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert received == [(9.0, "payload")]


def test_event_fired_twice_raises():
    sim = Simulator()
    gate = sim.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_event_value_before_fire_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_waiting_on_already_fired_event_resumes_immediately():
    sim = Simulator()
    gate = sim.event()
    gate.succeed(5)
    got = []

    def waiter():
        value = yield gate
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert got == [(0.0, 5)]


def test_process_return_value_propagates_via_done_event():
    sim = Simulator()
    results = []

    def child():
        yield Timeout(1.0)
        return "child-result"

    def parent():
        child_process = sim.spawn(child())
        value = yield child_process
        results.append(value)

    sim.spawn(parent())
    sim.run()
    assert results == ["child-result"]


def test_allof_waits_for_every_event():
    sim = Simulator()
    done_at = []

    def firer(event, delay):
        yield Timeout(delay)
        event.succeed(delay)

    events = [sim.event(str(i)) for i in range(3)]

    def waiter():
        values = yield AllOf(events)
        done_at.append((sim.now, values))

    sim.spawn(waiter())
    for event, delay in zip(events, (5.0, 20.0, 10.0)):
        sim.spawn(firer(event, delay))
    sim.run()
    assert done_at == [(20.0, [5.0, 20.0, 10.0])]


def test_allof_with_prefired_events_is_immediate():
    sim = Simulator()
    events = [sim.event(), sim.event()]
    for event in events:
        event.succeed()
    woke = []

    def waiter():
        yield AllOf(events)
        woke.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert woke == [0.0]


def test_run_until_caps_clock():
    sim = Simulator()

    def process():
        yield Timeout(100.0)

    sim.spawn(process())
    assert sim.run(until=40.0) == 40.0
    # the queued wakeup survives and completes on the next run
    assert sim.run() == 100.0


def test_yield_garbage_raises():
    sim = Simulator()

    def bad():
        yield "not an event"

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


class TestResource:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        spans = []

        def user(name):
            grant = resource.request()
            yield grant
            start = sim.now
            yield Timeout(10.0)
            resource.release()
            spans.append((name, start, sim.now))

        sim.spawn(user("a"))
        sim.spawn(user("b"))
        sim.run()
        assert spans == [("a", 0.0, 10.0), ("b", 10.0, 20.0)]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        finish = []

        def user():
            yield resource.request()
            yield Timeout(10.0)
            resource.release()
            finish.append(sim.now)

        for _ in range(2):
            sim.spawn(user())
        sim.run()
        assert finish == [10.0, 10.0]

    def test_release_without_request_raises(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_fifo_grant_order(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def user(name, arrive):
            yield Timeout(arrive)
            yield resource.request()
            order.append(name)
            yield Timeout(5.0)
            resource.release()

        sim.spawn(user("late", 2.0))
        sim.spawn(user("early", 1.0))
        sim.spawn(user("first", 0.0))
        sim.run()
        assert order == ["first", "early", "late"]

    def test_queue_length_visible(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def holder():
            yield resource.request()
            yield Timeout(50.0)
            resource.release()

        def prober():
            yield Timeout(10.0)
            resource.request()  # enqueues, never granted inside window
            assert resource.queue_length == 1

        sim.spawn(holder())
        sim.spawn(prober())
        sim.run(until=20.0)
        assert resource.in_use == 1


def test_scheduling_into_past_raises():
    sim = Simulator()

    def jumper():
        yield Timeout(5.0)

    sim.spawn(jumper())
    sim.run()
    with pytest.raises(SimulationError):
        sim._schedule(1.0, None, None)
