"""The sharded parallel runner: ordering, failure, stats, reproducibility.

``repro.sim.parallel`` forks worker processes over *independent*
simulations and merges results by submission index. The contract
(docs/sim-internals.md) is that a sharded run is byte-identical to the
serial run — these tests force ``workers=2`` explicitly so the forked
path is exercised even on single-CPU CI machines, where
:func:`default_workers` would otherwise degrade to serial.
"""

from __future__ import annotations

import os

import pytest

from repro.sim import parallel
from repro.sim.parallel import (
    ShardError,
    default_workers,
    prewarm_measurements,
    run_sharded,
    run_sharded_with_stats,
)


def _square(value: int) -> int:
    return value * value


def _parent_pid(_item) -> int:
    return os.getpid()


def _boom(value: int) -> int:
    if value == 3:
        raise ValueError("item three is cursed")
    return value


# ---------------------------------------------------------------------------
# worker-count resolution
# ---------------------------------------------------------------------------


def test_default_workers_explicit_wins(monkeypatch):
    monkeypatch.setenv(parallel.ENV_WORKERS, "7")
    assert default_workers(10, workers=3) == 3


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv(parallel.ENV_WORKERS, "4")
    assert default_workers(10) == 4
    monkeypatch.setenv(parallel.ENV_WORKERS, "1")
    assert default_workers(10) == 1


def test_default_workers_rejects_garbage_env(monkeypatch):
    monkeypatch.setenv(parallel.ENV_WORKERS, "many")
    with pytest.raises(ValueError, match="REPRO_SIM_WORKERS"):
        default_workers(10)


def test_default_workers_clamped_to_tasks(monkeypatch):
    monkeypatch.delenv(parallel.ENV_WORKERS, raising=False)
    assert default_workers(2, workers=16) == 2
    assert default_workers(1) == 1
    assert default_workers(5, workers=0) == 1


# ---------------------------------------------------------------------------
# run_sharded semantics
# ---------------------------------------------------------------------------


def test_empty_items_short_circuit():
    assert run_sharded(_square, [], workers=4) == []


def test_results_in_submission_order_regardless_of_workers():
    items = list(range(17))
    expected = [_square(item) for item in items]
    for workers in (1, 2, 3, 5):
        assert run_sharded(_square, items, workers=workers) == expected


def test_forked_run_actually_forks():
    pids = run_sharded(_parent_pid, [0, 1, 2, 3], workers=2)
    assert all(pid != os.getpid() for pid in pids)
    assert len(set(pids)) == 2  # one child per shard


def test_serial_fallback_runs_in_process():
    pids = run_sharded(_parent_pid, [0, 1, 2, 3], workers=1)
    assert set(pids) == {os.getpid()}


def test_worker_exception_surfaces_as_shard_error():
    with pytest.raises(ShardError, match="ValueError.*cursed"):
        run_sharded(_boom, list(range(6)), workers=2)


def test_shard_stats_account_for_every_item():
    results, stats = run_sharded_with_stats(_square, list(range(9)), workers=2)
    assert results == [_square(v) for v in range(9)]
    assert stats.workers == 2 and stats.forked
    assert sum(shard["items"] for shard in stats.shards) == 9
    assert all(shard["wall_seconds"] >= 0.0 for shard in stats.shards)
    assert stats.max_shard_wall_seconds >= 0.0
    assert parallel.LAST_SHARD_STATS is stats


def test_serial_stats_single_shard():
    results, stats = run_sharded_with_stats(_square, [2, 4], workers=1)
    assert results == [4, 16]
    assert stats.workers == 1 and not stats.forked
    assert [shard["items"] for shard in stats.shards] == [2]


# ---------------------------------------------------------------------------
# measurement pre-warm: sharded == serial, including cache statistics
# ---------------------------------------------------------------------------


def test_prewarm_matches_serial_measurement_and_stats():
    from repro.caching import MEASUREMENT_CACHE, reset_global_caches
    from repro.serving.server import measure_service_time_ns

    specs = [("resnet50", 4), ("resnet50", 2)]

    reset_global_caches()
    serial = {spec: measure_service_time_ns(*spec) for spec in specs}
    serial_stats = (
        MEASUREMENT_CACHE.stats.hits, MEASUREMENT_CACHE.stats.misses
    )

    reset_global_caches()
    warmed = prewarm_measurements(specs, workers=2)
    assert warmed == serial  # bitwise: measurement is deterministic
    # after the pre-warm, the caller's measurements are pure cache hits
    replay = {spec: measure_service_time_ns(*spec) for spec in specs}
    assert replay == serial
    sharded_stats = (
        MEASUREMENT_CACHE.stats.hits - len(specs),  # discount replay hits
        MEASUREMENT_CACHE.stats.misses,
    )
    assert sharded_stats == serial_stats
    reset_global_caches()


def test_prewarm_skips_already_cached_specs():
    from repro.caching import reset_global_caches

    reset_global_caches()
    first = prewarm_measurements([("resnet50", 4)], workers=1)
    assert list(first) == [("resnet50", 4)]
    again = prewarm_measurements([("resnet50", 4)], workers=1)
    assert again == {}
    reset_global_caches()


# ---------------------------------------------------------------------------
# chaos suite: N-shard run byte-identical to serial
# ---------------------------------------------------------------------------


def test_chaos_suite_sharded_equals_serial():
    from repro.chaos import run_suite

    names = ["baseline", "transient-storm"]
    serial = run_suite(names=names, seed=7, workers=1)
    sharded = run_suite(names=names, seed=7, workers=2)
    assert serial.to_json() == sharded.to_json()
