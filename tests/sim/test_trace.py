"""Unit tests for the execution trace."""

import pytest

from repro.sim import Interval, Trace


def test_interval_duration():
    assert Interval("e", "l", 2.0, 5.0).duration == 3.0


def test_interval_backwards_rejected():
    with pytest.raises(ValueError):
        Interval("e", "l", 5.0, 2.0)


def test_interval_nan_start_rejected():
    with pytest.raises(ValueError):
        Interval("e", "l", float("nan"), 2.0)


def test_interval_nan_end_rejected():
    with pytest.raises(ValueError):
        Interval("e", "l", 0.0, float("nan"))


def test_interval_negative_start_rejected():
    with pytest.raises(ValueError):
        Interval("e", "l", -1.0, 2.0)


def test_interval_zero_start_allowed():
    assert Interval("e", "l", 0.0, 0.0).duration == 0.0


def test_busy_time_merges_overlaps():
    trace = Trace()
    trace.record("core", "a", 0.0, 10.0)
    trace.record("core", "b", 5.0, 15.0)
    assert trace.busy_time("core") == 15.0


def test_busy_time_clips_to_window():
    trace = Trace()
    trace.record("core", "a", 0.0, 100.0)
    assert trace.busy_time("core", 20.0, 30.0) == 10.0


def test_busy_time_ignores_other_engines():
    trace = Trace()
    trace.record("core", "a", 0.0, 10.0)
    trace.record("dma", "b", 0.0, 50.0)
    assert trace.busy_time("core") == 10.0


def test_utilization_full_window():
    trace = Trace()
    trace.record("core", "a", 0.0, 25.0)
    assert trace.utilization("core", 0.0, 50.0) == pytest.approx(0.5)


def test_utilization_empty_window_is_zero():
    trace = Trace()
    assert trace.utilization("core", 10.0, 10.0) == 0.0


def test_utilization_disjoint_intervals():
    trace = Trace()
    trace.record("core", "a", 0.0, 10.0)
    trace.record("core", "b", 20.0, 30.0)
    assert trace.utilization("core", 0.0, 40.0) == pytest.approx(0.5)


def test_end_time_tracks_latest():
    trace = Trace()
    trace.record("a", "x", 0.0, 10.0)
    trace.record("b", "y", 5.0, 99.0)
    assert trace.end_time() == 99.0


def test_end_time_empty_is_zero():
    assert Trace().end_time() == 0.0


def test_counters_accumulate():
    trace = Trace()
    trace.bump("ops")
    trace.bump("ops", 2.5)
    assert trace.counters["ops"] == 3.5


def test_by_label_aggregates_durations():
    trace = Trace()
    trace.record("core", "conv", 0.0, 10.0)
    trace.record("dma", "conv", 0.0, 4.0)
    trace.record("core", "pool", 10.0, 11.0)
    totals = trace.by_label()
    assert totals["conv"] == 14.0
    assert totals["pool"] == 1.0


def test_engines_listing():
    trace = Trace()
    trace.record("a", "x", 0.0, 1.0)
    trace.record("b", "x", 0.0, 1.0)
    assert trace.engines() == {"a", "b"}
