"""Tests for the Chrome trace exporter."""

import json

from repro.models import build
from repro.runtime.runtime import Device
from repro.sim.trace import Trace
from repro.sim.trace_export import save_chrome_trace, to_chrome_trace


def _sample_trace():
    trace = Trace()
    trace.record("core.c0g0", "conv_0", 0.0, 1000.0)
    trace.record("dma.c0g0", "conv_0", 0.0, 400.0)
    trace.record("core.c0g0", "relu_0", 1000.0, 1100.0)
    return trace


def test_one_slice_per_interval():
    document = to_chrome_trace(_sample_trace())
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 3


def test_threads_named_after_engines():
    document = to_chrome_trace(_sample_trace())
    names = {
        event["args"]["name"]
        for event in document["traceEvents"]
        if event["name"] == "thread_name"
    }
    assert names == {"core.c0g0", "dma.c0g0"}


def test_timestamps_in_microseconds():
    document = to_chrome_trace(_sample_trace())
    conv = next(
        e for e in document["traceEvents"]
        if e["ph"] == "X" and e["name"] == "conv_0" and e["cat"] == "core"
    )
    assert conv["ts"] == 0.0
    assert conv["dur"] == 1.0  # 1000 ns


def test_categories_split_engine_families():
    document = to_chrome_trace(_sample_trace())
    categories = {e["cat"] for e in document["traceEvents"] if e["ph"] == "X"}
    assert categories == {"core", "dma"}


def test_save_is_valid_json(tmp_path):
    path = save_chrome_trace(_sample_trace(), tmp_path / "trace.json")
    document = json.loads(path.read_text())
    assert "traceEvents" in document


def test_real_execution_trace_exports(tmp_path):
    device = Device.open("i20")
    compiled = device.compile(build("resnet50"), batch=1)
    device.launch(compiled, num_groups=3)
    path = save_chrome_trace(
        device.accelerator.trace, tmp_path / "resnet50.json"
    )
    document = json.loads(path.read_text())
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert len(slices) > 50
    assert any(e["cat"] == "core" for e in slices)
    assert any(e["cat"] == "dma" for e in slices)
