"""Unit tests for the synchronization engine (§IV-D): all four patterns."""

import pytest

from repro.sim import Simulator, Timeout
from repro.sync import Barrier, Semaphore, SyncEngine


class TestSemaphore:
    def test_signal_then_wait(self):
        sim = Simulator()
        semaphore = Semaphore(sim)
        semaphore.signal()
        woke = []

        def waiter():
            yield semaphore.wait()
            woke.append(sim.now)

        sim.spawn(waiter())
        sim.run()
        assert woke == [0.0]

    def test_wait_blocks_until_signal(self):
        sim = Simulator()
        semaphore = Semaphore(sim)
        woke = []

        def waiter():
            yield semaphore.wait()
            woke.append(sim.now)

        def signaler():
            yield Timeout(30.0)
            semaphore.signal()

        sim.spawn(waiter())
        sim.spawn(signaler())
        sim.run()
        assert woke == [30.0]

    def test_initial_count(self):
        sim = Simulator()
        semaphore = Semaphore(sim, initial=2)
        woke = []

        def waiter(name):
            yield semaphore.wait()
            woke.append(name)

        for name in "abc":
            sim.spawn(waiter(name))
        sim.run(until=10.0)
        assert woke == ["a", "b"]

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(Simulator(), initial=-1)

    def test_bad_signal_amount_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(Simulator()).signal(0)


class TestBarrier:
    def test_releases_when_all_arrive(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=3)
        released = []

        def party(delay):
            yield Timeout(delay)
            yield barrier.arrive()
            released.append(sim.now)

        for delay in (5.0, 15.0, 10.0):
            sim.spawn(party(delay))
        sim.run()
        assert released == [15.0, 15.0, 15.0]

    def test_reusable_across_generations(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=2)
        crossings = []

        def party(offset):
            for round_index in range(2):
                yield Timeout(10.0 + offset)
                yield barrier.arrive()
                crossings.append((round_index, sim.now))

        sim.spawn(party(0.0))
        sim.spawn(party(5.0))
        sim.run()
        assert barrier.generation == 2
        assert len(crossings) == 4

    def test_over_arrival_raises(self):
        sim = Simulator()
        barrier = Barrier(sim, parties=1)
        barrier.arrive()
        barrier.arrive()  # new generation, fine

    def test_bad_parties_rejected(self):
        with pytest.raises(ValueError):
            Barrier(Simulator(), parties=0)


class TestOneToOne:
    def test_handoff_charges_latency(self):
        sim = Simulator()
        engine = SyncEngine(sim, latency_ns=40.0)
        timeline = []

        def producer():
            yield Timeout(100.0)
            yield from engine.signal("ready")

        def consumer():
            yield from engine.wait_for("ready")
            timeline.append(sim.now)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert timeline == [140.0]
        assert engine.stats.one_to_one == 1

    def test_cross_group_costs_more(self):
        sim = Simulator()
        engine = SyncEngine(sim, latency_ns=40.0, cross_group_multiplier=2.0)
        timeline = []

        def producer():
            yield from engine.signal("ready", cross_group=True)

        def consumer():
            yield from engine.wait_for("ready")
            timeline.append(sim.now)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert timeline == [80.0]


class TestOneToN:
    def test_notify_all_wakes_everyone(self):
        sim = Simulator()
        engine = SyncEngine(sim)
        woke = []

        def consumer(name):
            yield from engine.wait_for("go")
            woke.append(name)

        def producer():
            yield Timeout(10.0)
            yield from engine.notify_all("go", waiters=3)

        for name in "abc":
            sim.spawn(consumer(name))
        sim.spawn(producer())
        sim.run()
        assert sorted(woke) == ["a", "b", "c"]
        assert engine.stats.one_to_n == 1

    def test_zero_waiters_rejected(self):
        sim = Simulator()
        engine = SyncEngine(sim)
        with pytest.raises(ValueError):
            list(engine.notify_all("go", waiters=0))


class TestNToOne:
    def test_join_fires_after_all_checkins(self):
        sim = Simulator()
        engine = SyncEngine(sim)
        joined = []

        def worker(delay):
            yield Timeout(delay)
            yield from engine.check_in("done", 3)

        def collector():
            yield engine.join("done", 3)
            joined.append(sim.now)

        for delay in (10.0, 30.0, 20.0):
            sim.spawn(worker(delay))
        sim.spawn(collector())
        sim.run()
        assert joined and joined[0] >= 30.0
        assert engine.stats.n_to_one == 1

    def test_mismatched_parties_raises(self):
        sim = Simulator()
        engine = SyncEngine(sim)
        engine.join("x", 3)
        with pytest.raises(ValueError):
            engine.join("x", 4)


class TestNToM:
    def test_rendezvous_synchronizes_both_sides(self):
        sim = Simulator()
        engine = SyncEngine(sim)
        barrier = engine.rendezvous(parties=5)
        released = []

        def participant(delay):
            yield Timeout(delay)
            yield from engine.arrive(barrier)
            released.append(sim.now)

        for delay in (1.0, 2.0, 3.0, 4.0, 50.0):
            sim.spawn(participant(delay))
        sim.run()
        assert all(time >= 50.0 for time in released)
        assert engine.stats.n_to_m == 1
