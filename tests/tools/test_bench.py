"""The benchmark harness: schema validator, regression gates, outputs."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

spec = importlib.util.spec_from_file_location(
    "bench", REPO_ROOT / "tools" / "bench.py"
)
bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench)

SCHEMA = json.loads((REPO_ROOT / "benchmarks" / "perf" / "schema.json").read_text())
BASELINE = json.loads(
    (REPO_ROOT / "benchmarks" / "perf" / "baseline.json").read_text()
)


def _report(benchmarks):
    return {
        "schema_version": 1,
        "run": {"quick": True, "timestamp": "t", "python": "3"},
        "benchmarks": benchmarks,
    }


class TestValidator:
    def test_valid_document_passes(self):
        doc = _report(
            [{"name": "x", "wall_seconds": 0.1, "metrics": {"speedup": 2.0}}]
        )
        assert bench.validate(doc, SCHEMA) == []

    def test_missing_required_key(self):
        doc = _report([{"name": "x", "metrics": {}}])
        errors = bench.validate(doc, SCHEMA)
        assert any("wall_seconds" in e for e in errors)

    def test_wrong_schema_version(self):
        doc = _report([])
        doc["schema_version"] = 2
        assert any("constant" in e for e in bench.validate(doc, SCHEMA))

    def test_non_numeric_metric_rejected(self):
        doc = _report(
            [{"name": "x", "wall_seconds": 0.1, "metrics": {"bad": "fast"}}]
        )
        assert any("expected number" in e for e in bench.validate(doc, SCHEMA))

    def test_bool_is_not_a_number(self):
        doc = _report(
            [{"name": "x", "wall_seconds": 0.1, "metrics": {"flag": True}}]
        )
        assert bench.validate(doc, SCHEMA) != []

    def test_negative_wall_time_rejected(self):
        doc = _report([{"name": "x", "wall_seconds": -0.1, "metrics": {}}])
        assert any("minimum" in e for e in bench.validate(doc, SCHEMA))

    def test_unexpected_top_level_key_rejected(self):
        doc = _report([])
        doc["surprise"] = 1
        assert any("unexpected key" in e for e in bench.validate(doc, SCHEMA))

    def test_committed_bench_report_is_valid(self):
        committed = REPO_ROOT / "BENCH_1.json"
        report = json.loads(committed.read_text())
        assert bench.validate(report, SCHEMA) == []


class TestRegressionGates:
    def _single(self, name, metrics, quick=True):
        report = _report([{"name": name, "wall_seconds": 0.1, "metrics": metrics}])
        report["run"]["quick"] = quick
        return report

    def test_min_floor(self):
        baseline = {"gates": [
            {"benchmark": "b", "metric": "speedup", "kind": "min", "value": 20.0}
        ]}
        ok = self._single("b", {"speedup": 25.0})
        bad = self._single("b", {"speedup": 12.0})
        assert bench.check_regressions(ok, baseline) == []
        assert bench.check_regressions(bad, baseline)

    def test_max_ceiling(self):
        baseline = {"gates": [
            {"benchmark": "b", "metric": "reruns", "kind": "max", "value": 0.0}
        ]}
        assert bench.check_regressions(self._single("b", {"reruns": 0.0}), baseline) == []
        assert bench.check_regressions(self._single("b", {"reruns": 1.0}), baseline)

    def test_relative_lower_is_better(self):
        baseline = {"gates": [{
            "benchmark": "b", "metric": "latency", "kind": "relative",
            "value": 10.0, "tolerance": 0.2, "higher_is_better": False,
        }]}
        assert bench.check_regressions(self._single("b", {"latency": 11.9}), baseline) == []
        assert bench.check_regressions(self._single("b", {"latency": 12.1}), baseline)

    def test_relative_higher_is_better(self):
        baseline = {"gates": [{
            "benchmark": "b", "metric": "rate", "kind": "relative",
            "value": 1.0, "tolerance": 0.2, "higher_is_better": True,
        }]}
        assert bench.check_regressions(self._single("b", {"rate": 0.85}), baseline) == []
        assert bench.check_regressions(self._single("b", {"rate": 0.7}), baseline)

    def test_missing_metric_fails(self):
        baseline = {"gates": [
            {"benchmark": "b", "metric": "gone", "kind": "min", "value": 1.0}
        ]}
        assert bench.check_regressions(self._single("b", {}), baseline)

    def test_quick_only_gate_skipped_on_full_runs(self):
        baseline = {"gates": [{
            "benchmark": "b", "metric": "p99", "kind": "relative",
            "value": 1.0, "quick_only": True,
        }]}
        full = self._single("b", {"p99": 100.0}, quick=False)
        quick = self._single("b", {"p99": 100.0}, quick=True)
        assert bench.check_regressions(full, baseline) == []
        assert bench.check_regressions(quick, baseline)

    def test_committed_baseline_gates_are_well_formed(self):
        for gate in BASELINE["gates"]:
            assert gate["kind"] in ("min", "max", "relative")
            assert isinstance(gate["value"], (int, float))


class TestOutputs:
    def test_next_output_path_skips_taken_numbers(self, tmp_path):
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_3.json").write_text("{}")
        assert bench.next_output_path(tmp_path).name == "BENCH_2.json"

    def test_gemm_benchmark_meets_its_own_gate(self):
        result = bench.bench_gemm(quick=True)
        assert result["metrics"]["speedup"] >= 20.0
        assert bench.validate(
            _report([result]), SCHEMA
        ) == [], "bench_gemm emits off-schema metrics"

    def test_main_quick_writes_valid_report(self, tmp_path):
        output = tmp_path / "BENCH_1.json"
        code = bench.main(
            ["--quick", "-o", str(output), "--check", str(bench.BASELINE_PATH)]
        )
        assert code == 0
        report = json.loads(output.read_text())
        assert bench.validate(report, SCHEMA) == []
        names = {b["name"] for b in report["benchmarks"]}
        assert {"micro.gemm_fastpath", "micro.rle_codec",
                "e2e.resnet50", "serving.multitenant"} <= names
