#!/usr/bin/env python
"""Performance regression harness: micro, end-to-end and serving benchmarks.

Runs three tiers of benchmarks against the simulator stack and emits a
schema-versioned ``BENCH_<n>.json`` report (see
``benchmarks/perf/schema.json``):

- **micro** — vectorized engine fast paths against their pinned reference
  loops: ``MatrixEngine.gemm`` vs ``gemm_reference`` and the RLE sparse
  codec vs its element-at-a-time encoder/decoder.
- **e2e** — compile + launch of model-zoo networks, including cold/warm
  compile wall time through the content-addressed
  :class:`repro.caching.CompileCache`.
- **serving** — a two-tenant :class:`~repro.serving.InferenceServer`
  scenario, plus the measurement-cache guarantee that a second server over
  the same tenant set performs zero additional simulator measurements.
- **serving.fleet_scale** — the fleet request loop at 16/256(/2048)
  devices over one fixed Poisson + flash-crowd trace: per-request cost
  must stay near-flat as the fleet grows (O(log N) routing), and the
  heap router must stay byte-identical to the pinned reference router.
- **serving.powercap** — one fixed trace under a loose vs a tight fleet
  power budget: the tight run must be byte-reproducible, serve no less,
  and land strictly lower energy-per-inference at bounded p99 inflation
  (the DVFS V^2 dividend — docs/power.md).
- **serving.sdc_overhead** — ABFT-checked GEMM cost against the
  unchecked fast path (probe <= 1.2x, strict <= 2.0x, gated) plus a
  defended-vs-undefended silent-corruption fleet run: the defended run
  serves zero corrupted results, the undefended run demonstrably serves
  some (docs/robustness.md).
- **sim.parallel_shards** — the chaos suite run serially and sharded
  across forced worker processes (:mod:`repro.sim.parallel`), byte-diffed:
  sharding must never change a result.

Two kinds of numbers come out, and the regression gate treats them
differently (documented in docs/performance.md):

- *simulated/deterministic* metrics (simulated latency, cache hit rates,
  speedup ratios measured on the same host in the same process) are gated
  against ``benchmarks/perf/baseline.json`` — ``--check`` fails the run
  when a gated metric regresses beyond its tolerance (default 20%) or
  drops below an absolute floor.
- *wall-clock* metrics are reported for trend-watching but never gated on
  their absolute value: CI machines vary too much.

Usage::

    python tools/bench.py --quick                  # CI smoke tier
    python tools/bench.py -o BENCH_1.json          # explicit output
    python tools/bench.py --quick --check benchmarks/perf/baseline.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

SCHEMA_VERSION = 1
SCHEMA_PATH = REPO_ROOT / "benchmarks" / "perf" / "schema.json"
BASELINE_PATH = REPO_ROOT / "benchmarks" / "perf" / "baseline.json"


# --------------------------------------------------------------------------
# benchmarks
# --------------------------------------------------------------------------


def bench_gemm(quick: bool) -> dict:
    """Fast-path vs reference-loop GEMM on the acceptance shape."""
    from repro.core.datatypes import DType
    from repro.engines.matrix import MatrixEngine

    m, k, n = 64, 256, 256
    rng = np.random.default_rng(7)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))

    fast = MatrixEngine(DType.FP16)
    start = time.perf_counter()
    out_fast = fast.gemm(a, b)
    fast_s = time.perf_counter() - start

    reference = MatrixEngine(DType.FP16)
    start = time.perf_counter()
    out_ref = reference.gemm_reference(a, b)
    ref_s = time.perf_counter() - start

    assert np.array_equal(out_fast, out_ref), "gemm fast path diverged"
    assert fast.vmm_issued == reference.vmm_issued, "cost accounting diverged"
    return {
        "name": "micro.gemm_fastpath",
        "wall_seconds": fast_s + ref_s,
        "metrics": {
            "shape_m": m, "shape_k": k, "shape_n": n,
            "fast_wall_seconds": fast_s,
            "reference_wall_seconds": ref_s,
            "speedup": ref_s / fast_s if fast_s else float("inf"),
            "vmm_issued": float(fast.vmm_issued),
            "macs_executed": float(fast.macs_executed),
        },
    }


def bench_rle(quick: bool) -> dict:
    """Vectorized vs loop RLE codec on a post-ReLU-like sparse tensor."""
    from repro.dma import sparse

    size = 200_000 if quick else 1_000_000
    rng = np.random.default_rng(11)
    flat = rng.standard_normal(size).astype(np.float32)
    flat[rng.random(size) < 0.9] = 0.0

    start = time.perf_counter()
    compressed = sparse.compress(flat, sparse.SparseFormat.RLE)
    restored = sparse.decompress(compressed)
    fast_s = time.perf_counter() - start

    start = time.perf_counter()
    loop_payload = sparse._compress_rle_loop(flat)
    sparse._decompress_rle_loop(compressed)
    loop_s = time.perf_counter() - start

    assert loop_payload == compressed.payload, "RLE fast path diverged"
    assert np.array_equal(restored, flat), "RLE round-trip failed"
    return {
        "name": "micro.rle_codec",
        "wall_seconds": fast_s + loop_s,
        "metrics": {
            "elements": size,
            "fast_wall_seconds": fast_s,
            "loop_wall_seconds": loop_s,
            "speedup": loop_s / fast_s if fast_s else float("inf"),
            "compression_ratio": compressed.compression_ratio,
        },
    }


def bench_e2e(model: str, quick: bool) -> dict:
    """Compile (cold + warm through the cache) and launch one model."""
    from repro.caching import CompileCache
    from repro.models.zoo import build
    from repro.runtime.runtime import Device

    device = Device.open("i20")
    cache = CompileCache()  # private cache: cold miss is guaranteed

    start = time.perf_counter()
    compiled = device.compile(build(model), batch=1, cache=cache)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    recompiled = device.compile(build(model), batch=1, cache=cache)
    warm_s = time.perf_counter() - start
    assert recompiled is compiled, "warm compile missed the cache"

    start = time.perf_counter()
    result = device.launch(compiled)
    launch_s = time.perf_counter() - start
    return {
        "name": f"e2e.{model}",
        "wall_seconds": cold_s + warm_s + launch_s,
        "metrics": {
            "compile_cold_wall_seconds": cold_s,
            "compile_warm_wall_seconds": warm_s,
            "compile_cache_hit_rate": cache.stats.hit_rate,
            "launch_wall_seconds": launch_s,
            "simulated_latency_ms": result.latency_ms,
            "kernels": float(len(compiled.kernels)),
        },
    }


def bench_serving(quick: bool) -> dict:
    """Two-tenant serving scenario + measurement-cache reuse guarantee."""
    from repro.caching import MEASUREMENT_CACHE
    from repro.serving import (
        InferenceServer,
        TenantConfig,
        TrafficPattern,
        generate_trace,
    )

    tenants = [
        TenantConfig("vision", "resnet50", groups=4, max_batch=4),
        TenantConfig("nlp", "bert_large", groups=4, max_batch=2),
    ]
    patterns = [
        TrafficPattern("vision", rate_per_s=400.0, burstiness=2.0),
        TrafficPattern("nlp", rate_per_s=80.0),
    ]
    duration_s = 0.05 if quick else 0.25
    trace = generate_trace(patterns, duration_s=duration_s, seed=3)

    start = time.perf_counter()
    server = InferenceServer(tenants)
    build_s = time.perf_counter() - start
    start = time.perf_counter()
    reports = server.run(trace)
    run_s = time.perf_counter() - start

    # A second server over the same tenant set must be pure cache hits.
    misses_before = MEASUREMENT_CACHE.stats.misses
    start = time.perf_counter()
    InferenceServer(tenants)
    rebuild_s = time.perf_counter() - start
    extra_measurements = MEASUREMENT_CACHE.stats.misses - misses_before

    metrics = {
        "trace_requests": float(len(trace)),
        "first_server_wall_seconds": build_s,
        "second_server_wall_seconds": rebuild_s,
        "second_server_measurement_runs": float(extra_measurements),
        "measurement_cache_hit_rate": MEASUREMENT_CACHE.stats.hit_rate,
        "run_wall_seconds": run_s,
    }
    for name, report in reports.items():
        metrics[f"{name}_p99_ms"] = report.p99_ms
        metrics[f"{name}_completed"] = float(report.completed)
    return {
        "name": "serving.multitenant",
        "wall_seconds": build_s + run_s + rebuild_s,
        "metrics": metrics,
    }


def bench_fleet_scale(quick: bool) -> dict:
    """Fleet routing fast path at 16/256(/2048) devices, fixed trace.

    The workload never changes — one Poisson tenant plus one flash-crowd
    tenant over the same loadgen seed — only the fleet size does, so the
    per-request request-loop cost isolates the router's scaling. With
    O(log N) heap routing the 2048-device per-request cost must stay
    within 2x the 16-device cost (gated, full tier); the quick tier runs
    the 16/256 rows for the CI smoke job. The 16-device row also replays
    through the pinned reference router and byte-compares the reports
    (``reference_identical`` is a gated invariant on every tier).
    """
    import json as _json

    from repro.serving.fleet import FleetConfig, FleetManager
    from repro.serving.loadgen import LoadSpec, generate_load
    from repro.serving.server import RasConfig, TenantConfig

    tenants = [
        TenantConfig("steady", "resnet50", groups=4),
        TenantConfig("bursty", "bert_large", groups=4),
    ]
    # Sized so even the 16-device fleet serves the whole trace (peak
    # demand ~12 replicas-worth): every size then performs identical
    # per-request work and the cost ratio isolates the routing layer.
    service_times_ns = {"steady": 0.1e6, "bursty": 0.5e6}
    specs = [
        LoadSpec(tenant="steady", rate_per_s=20_000.0, users=500),
        LoadSpec(
            tenant="bursty", rate_per_s=4_000.0, shape="flash-crowd",
            users=300, flash_at_s=0.1, flash_duration_s=0.15,
            flash_multiplier=5.0, flash_ramp_s=0.03,
        ),
    ]
    duration_s = 0.12 if quick else 0.6
    trace = generate_load(specs, duration_s=duration_s, seed=23)
    sizes = [16, 256] if quick else [16, 256, 2048]

    def fleet(replicas: int, routing: str) -> FleetManager:
        return FleetManager(
            tenants,
            config=FleetConfig(
                replicas=replicas, hot_spares=0, seed=5,
                validate_on_open=False,
            ),
            ras=RasConfig(queue_depth_limit=4096),
            service_times_ns=dict(service_times_ns),
            routing=routing,
        )

    metrics: dict[str, float] = {"trace_requests": float(len(trace))}
    wall_total = 0.0
    cost_by_size: dict[int, float] = {}
    for replicas in sizes:
        manager = fleet(replicas, "heap")
        start = time.perf_counter()
        report = manager.run(trace)
        run_s = time.perf_counter() - start
        wall_total += run_s
        cost_by_size[replicas] = run_s / len(trace)
        metrics[f"run_wall_seconds_{replicas}"] = run_s
        metrics[f"per_request_cost_us_{replicas}"] = (
            run_s / len(trace) * 1e6
        )
        metrics[f"served_{replicas}"] = float(
            sum(stats.served for stats in report.tenants.values())
        )
        if replicas == 16:
            heap_json = _json.dumps(report.to_dict(), sort_keys=True)
            start = time.perf_counter()
            reference = fleet(replicas, "reference").run(trace)
            wall_total += time.perf_counter() - start
            reference_json = _json.dumps(
                reference.to_dict(), sort_keys=True
            )
            metrics["reference_identical"] = (
                1.0 if heap_json == reference_json else 0.0
            )
    base_cost = cost_by_size[16]
    for replicas in sizes[1:]:
        metrics[f"per_request_cost_ratio_{replicas}_vs_16"] = (
            cost_by_size[replicas] / base_cost if base_cost else float("inf")
        )
    return {
        "name": "serving.fleet_scale",
        "wall_seconds": wall_total,
        "metrics": metrics,
    }


def bench_parallel_shards(quick: bool) -> dict:
    """Sharded chaos suite vs serial: byte-identical results, shard walls.

    Runs the same scenario set twice — serial (``workers=1``) and forced
    two-worker sharded — and byte-diffs the canonical JSON. The
    ``identical`` metric is the gated invariant (1.0 or 0.0): sharding
    must never change a result, on any host. The wall-clock ratio is
    reported for trend-watching only; on a single-CPU runner the sharded
    run is legitimately no faster (docs/performance.md).
    """
    from repro.chaos import run_suite
    from repro.sim import parallel

    names = ["baseline", "transient-storm"] if quick else None

    start = time.perf_counter()
    serial = run_suite(names=names, seed=7, workers=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    sharded = run_suite(names=names, seed=7, workers=2)
    sharded_s = time.perf_counter() - start
    stats = parallel.LAST_SHARD_STATS  # the sharded suite's shard table

    return {
        "name": "sim.parallel_shards",
        "wall_seconds": serial_s + sharded_s,
        "metrics": {
            "scenarios": float(len(serial.results)),
            "identical": 1.0 if serial.to_json() == sharded.to_json() else 0.0,
            "workers": float(stats.workers if stats else 1),
            "serial_wall_seconds": serial_s,
            "sharded_wall_seconds": sharded_s,
            "speedup": serial_s / sharded_s if sharded_s else float("inf"),
            "max_shard_wall_seconds": (
                stats.max_shard_wall_seconds if stats else 0.0
            ),
        },
    }


def bench_powercap(quick: bool) -> dict:
    """Fleet power governor: a tighter cap is cheaper per inference.

    One fixed trace runs under a loose fleet budget (caps never bind)
    and a tight one sized inside the DVFS-dominated region, plus a
    same-seed repeat of the tight run. Gated invariants: the repeat is
    byte-identical, the tight run serves everything the loose run
    served, and downclocking's super-linear (V^2) dynamic savings make
    the tight run's energy-per-inference strictly lower at bounded p99
    inflation (docs/power.md). All metrics are simulated/deterministic.
    """
    from repro.serving.fleet import FleetConfig, FleetManager
    from repro.serving.powercap import PowerCapConfig
    from repro.serving.server import TenantConfig
    from repro.serving.workload import TrafficPattern, generate_trace

    tenants = [TenantConfig("a", "resnet50", groups=2, max_batch=1)]
    duration_s = 0.2 if quick else 0.5
    trace = generate_trace(
        [TrafficPattern("a", 1200.0)], duration_s=duration_s, seed=11
    )

    def run(budget_watts: float):
        manager = FleetManager(
            tenants,
            config=FleetConfig(replicas=2, hot_spares=0, seed=5),
            service_times_ns={"a": 1.0e6},
            powercap=PowerCapConfig(fleet_budget_watts=budget_watts),
        )
        return manager.run(trace)

    start = time.perf_counter()
    loose = run(300.0)   # 2x device peak: the governor never throttles
    tight = run(240.0)   # binds into DVFS downclock, not deep stall
    repeat = run(240.0)
    wall_s = time.perf_counter() - start

    identical = json.dumps(tight.to_dict(), sort_keys=True) == json.dumps(
        repeat.to_dict(), sort_keys=True
    )
    loose_stats = loose.tenants["a"]
    tight_stats = tight.tenants["a"]
    loose_einf = loose.power["energy_per_inference_mj"]
    tight_einf = tight.power["energy_per_inference_mj"]
    return {
        "name": "serving.powercap",
        "wall_seconds": wall_s,
        "metrics": {
            "trace_requests": float(len(trace)),
            "rerun_identical": 1.0 if identical else 0.0,
            "served_conserved": (
                1.0 if tight_stats.served >= loose_stats.served else 0.0
            ),
            "loose_energy_per_inference_mj": loose_einf,
            "tight_energy_per_inference_mj": tight_einf,
            "energy_per_inference_ratio": (
                tight_einf / loose_einf if loose_einf else 0.0
            ),
            "loose_p99_ms": loose_stats.p99_ms,
            "tight_p99_ms": tight_stats.p99_ms,
            "p99_inflation": (
                tight_stats.p99_ms / loose_stats.p99_ms
                if loose_stats.p99_ms else 0.0
            ),
            "tight_mean_throttle_ratio": (
                tight.power["mean_throttle_ratio"]
            ),
            "run_wall_seconds": wall_s,
        },
    }


def bench_sdc_overhead(quick: bool) -> dict:
    """ABFT-checked GEMM cost + end-to-end SDC defense effectiveness.

    Numeric tier: min-of-reps wall time of the vectorized engine GEMM
    unchecked vs :func:`repro.engines.abft.checked_gemm` in probe and
    strict mode on the acceptance shape — the gated overhead budget
    (probe <= 1.2x, strict <= 2.0x; docs/robustness.md). A rep with a
    rate-1.0 corruptor proves strict checking actually detects
    (``strict_detects``). Fleet tier: one fixed trace under a background
    silent-corruption campaign runs defended (strict ABFT + screens +
    audits) and undefended (defenses off): the defended run must serve
    zero corrupted results while the undefended run demonstrably serves
    some, and a same-seed repeat of the defended run is byte-identical.
    All gated metrics are simulated/deterministic or machine-relative
    ratios.
    """
    from repro.core.datatypes import DType
    from repro.engines.abft import checked_gemm
    from repro.engines.matrix import MatrixEngine
    from repro.faults.errors import SilentCorruptionFault
    from repro.faults.plan import FaultPlan
    from repro.faults.schedule import FaultSchedule
    from repro.faults.silent import SilentCorruptor
    from repro.serving.fleet import FleetConfig, FleetManager
    from repro.serving.sdc import SdcConfig
    from repro.serving.server import TenantConfig
    from repro.serving.workload import TrafficPattern, generate_trace

    # Large enough that the O(m·k·n) engine GEMM dominates the O(mk+kn)
    # checksum work, so the slowdown ratios measure ABFT cost rather
    # than single-run timer noise.
    m, k, n = 128, 256, 256
    reps = 3 if quick else 5
    rng = np.random.default_rng(19)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))

    def best_of(mode: str) -> float:
        best = float("inf")
        for _ in range(reps):
            engine = MatrixEngine(DType.FP16)
            start = time.perf_counter()
            if mode == "unchecked":
                engine.gemm(a, b)
            else:
                checked_gemm(engine, a, b, mode=mode)
            best = min(best, time.perf_counter() - start)
        return best

    wall_start = time.perf_counter()
    unchecked_s = best_of("unchecked")
    probe_s = best_of("probe")
    strict_s = best_of("strict")

    # Strict checking must catch a real injected corruption.
    corrupt_engine = MatrixEngine(
        DType.FP16,
        corruptor=SilentCorruptor(FaultPlan(sdc_gemm_rate=1.0), seed=3),
    )
    try:
        checked_gemm(corrupt_engine, a, b, mode="strict")
        strict_detects = 0.0
    except SilentCorruptionFault:
        strict_detects = 1.0

    tenants = [TenantConfig("a", "resnet50", groups=2, max_batch=1)]
    duration_s = 0.15 if quick else 0.4
    trace = generate_trace(
        [TrafficPattern("a", 600.0)], duration_s=duration_s, seed=13
    )
    schedule = FaultSchedule(
        base=FaultPlan(sdc_gemm_rate=0.004, sdc_dma_rate=0.002)
    )

    def run(sdc: SdcConfig):
        manager = FleetManager(
            tenants,
            config=FleetConfig(replicas=2, hot_spares=1, seed=5),
            schedule=schedule,
            service_times_ns={"a": 1.0e6},
            sdc=sdc,
        )
        return manager.run(trace)

    defended_config = SdcConfig(
        abft="strict", screen_interval_ms=25.0, screen_vectors=2,
        audit_fraction=0.2, quarantine_threshold=2, retire_after=8,
    )
    defended = run(defended_config)
    repeat = run(defended_config)
    undefended = run(SdcConfig())
    wall_s = time.perf_counter() - wall_start

    identical = json.dumps(defended.to_dict(), sort_keys=True) == json.dumps(
        repeat.to_dict(), sort_keys=True
    )
    return {
        "name": "serving.sdc_overhead",
        "wall_seconds": wall_s,
        "metrics": {
            "shape_m": m, "shape_k": k, "shape_n": n,
            "unchecked_wall_seconds": unchecked_s,
            "probe_wall_seconds": probe_s,
            "strict_wall_seconds": strict_s,
            "probe_slowdown": (
                probe_s / unchecked_s if unchecked_s else float("inf")
            ),
            "strict_slowdown": (
                strict_s / unchecked_s if unchecked_s else float("inf")
            ),
            "strict_detects": strict_detects,
            "trace_requests": float(len(trace)),
            "rerun_identical": 1.0 if identical else 0.0,
            "injected_defended": float(defended.sdc["injected"]),
            "detected_defended": float(defended.sdc["detected_total"]),
            "served_corrupted_defended": float(
                defended.sdc["served_corrupted"]
            ),
            "injected_undefended": float(undefended.sdc["injected"]),
            "served_corrupted_undefended": float(
                undefended.sdc["served_corrupted"]
            ),
        },
    }


def run_benchmarks(quick: bool) -> dict:
    from repro.caching import reset_global_caches

    reset_global_caches()
    models = ["resnet50"] if quick else ["resnet50", "bert_large", "yolo_v3"]
    benchmarks = [bench_gemm(quick), bench_rle(quick)]
    benchmarks += [bench_e2e(model, quick) for model in models]
    benchmarks.append(bench_serving(quick))
    benchmarks.append(bench_powercap(quick))
    benchmarks.append(bench_sdc_overhead(quick))
    benchmarks.append(bench_fleet_scale(quick))
    benchmarks.append(bench_parallel_shards(quick))
    return {
        "schema_version": SCHEMA_VERSION,
        "run": {
            "quick": quick,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": sys.version.split()[0],
        },
        "benchmarks": benchmarks,
    }


# --------------------------------------------------------------------------
# schema validation (hand-rolled subset; no external deps)
# --------------------------------------------------------------------------


def validate(doc, schema, path: str = "$") -> list[str]:
    """Check ``doc`` against a JSON-Schema subset; returns error strings.

    Supports: type, const, minimum, required, properties,
    additionalProperties (schema form), items, enum — the subset
    ``benchmarks/perf/schema.json`` uses.
    """
    errors: list[str] = []
    expected = schema.get("type")
    type_map = {
        "object": dict, "array": list, "string": str,
        "number": (int, float), "integer": int, "boolean": bool,
    }
    if expected is not None:
        python_type = type_map[expected]
        ok = isinstance(doc, python_type)
        if expected in ("number", "integer") and isinstance(doc, bool):
            ok = False
        if not ok:
            return [f"{path}: expected {expected}, got {type(doc).__name__}"]
    if "const" in schema and doc != schema["const"]:
        errors.append(f"{path}: expected constant {schema['const']!r}, got {doc!r}")
    if "enum" in schema and doc not in schema["enum"]:
        errors.append(f"{path}: {doc!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(doc, (int, float)) and doc < schema["minimum"]:
        errors.append(f"{path}: {doc} < minimum {schema['minimum']}")
    if isinstance(doc, dict):
        for key in schema.get("required", []):
            if key not in doc:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, value in doc.items():
            if key in properties:
                errors.extend(validate(value, properties[key], f"{path}.{key}"))
            elif isinstance(extra, dict):
                errors.extend(validate(value, extra, f"{path}.{key}"))
            elif extra is False:
                errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(doc, list) and "items" in schema:
        for index, item in enumerate(doc):
            errors.extend(validate(item, schema["items"], f"{path}[{index}]"))
    return errors


# --------------------------------------------------------------------------
# regression gating
# --------------------------------------------------------------------------


def check_regressions(report: dict, baseline: dict) -> list[str]:
    """Compare gated metrics against the committed baseline.

    Baseline gate kinds:

    - ``relative``: fail when the new value is worse than ``value`` by more
      than ``tolerance`` (fractional), direction given by
      ``higher_is_better``.
    - ``min`` / ``max``: absolute floor/ceiling, for ratios like fast-path
      speedups where a relative-to-baseline gate would be noisy.

    Gates marked ``"quick_only": true`` cover metrics whose expected value
    depends on the quick-tier workload (e.g. serving percentiles over the
    short trace) and are skipped for full-tier reports. Gates marked
    ``"full_only": true`` cover metrics that only the full tier produces
    (e.g. the 2048-device fleet row) and are skipped for quick reports.
    """
    by_name = {bench["name"]: bench["metrics"] for bench in report["benchmarks"]}
    failures: list[str] = []
    for gate in baseline["gates"]:
        if gate.get("quick_only") and not report["run"]["quick"]:
            continue
        if gate.get("full_only") and report["run"]["quick"]:
            continue
        bench, metric = gate["benchmark"], gate["metric"]
        where = f"{bench}:{metric}"
        metrics = by_name.get(bench)
        if metrics is None or metric not in metrics:
            failures.append(f"{where}: missing from report")
            continue
        value = metrics[metric]
        kind = gate["kind"]
        if kind == "min":
            if value < gate["value"]:
                failures.append(f"{where}: {value:.4g} < floor {gate['value']:.4g}")
        elif kind == "max":
            if value > gate["value"]:
                failures.append(f"{where}: {value:.4g} > ceiling {gate['value']:.4g}")
        elif kind == "relative":
            tolerance = gate.get("tolerance", 0.2)
            base = gate["value"]
            if gate.get("higher_is_better", False):
                limit = base * (1.0 - tolerance)
                if value < limit:
                    failures.append(
                        f"{where}: {value:.4g} regressed below "
                        f"{limit:.4g} ({base:.4g} - {tolerance:.0%})"
                    )
            else:
                limit = base * (1.0 + tolerance)
                if value > limit:
                    failures.append(
                        f"{where}: {value:.4g} regressed above "
                        f"{limit:.4g} ({base:.4g} + {tolerance:.0%})"
                    )
        else:
            failures.append(f"{where}: unknown gate kind {kind!r}")
    return failures


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------


def next_output_path(directory: Path) -> Path:
    """First free BENCH_<n>.json, counting up from existing reports."""
    taken = {
        int(match.group(1))
        for existing in directory.glob("BENCH_*.json")
        if (match := re.fullmatch(r"BENCH_(\d+)\.json", existing.name))
    }
    number = 1
    while number in taken:
        number += 1
    return directory / f"BENCH_{number}.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke tier: smaller tensors, one e2e model, short trace",
    )
    parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="report path (default: next free BENCH_<n>.json in the repo root)",
    )
    parser.add_argument(
        "--check", type=Path, nargs="?", const=BASELINE_PATH, default=None,
        metavar="BASELINE",
        help="gate metrics against a baseline file (default: %(default)s "
             "when the flag is given bare)",
    )
    parser.add_argument(
        "--schema", type=Path, default=SCHEMA_PATH,
        help="schema to validate the emitted report against",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(quick=args.quick)

    schema = json.loads(args.schema.read_text())
    schema_errors = validate(report, schema)
    if schema_errors:
        for error in schema_errors:
            print(f"schema: {error}", file=sys.stderr)
        return 2

    output = args.output or next_output_path(REPO_ROOT)
    output.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(bench["name"]) for bench in report["benchmarks"])
    for bench in report["benchmarks"]:
        highlights = []
        metrics = bench["metrics"]
        if "speedup" in metrics:
            highlights.append(f"speedup {metrics['speedup']:.1f}x")
        if "simulated_latency_ms" in metrics:
            highlights.append(f"sim {metrics['simulated_latency_ms']:.3f} ms")
        if "second_server_measurement_runs" in metrics:
            highlights.append(
                f"re-measurements {int(metrics['second_server_measurement_runs'])}"
            )
        if "identical" in metrics:
            highlights.append(
                "shards identical" if metrics["identical"] == 1.0
                else "SHARDS DIVERGED"
            )
        if "reference_identical" in metrics:
            highlights.append(
                "routing identical" if metrics["reference_identical"] == 1.0
                else "ROUTING DIVERGED"
            )
        if "strict_slowdown" in metrics:
            highlights.append(
                f"abft strict {metrics['strict_slowdown']:.2f}x  "
                f"probe {metrics['probe_slowdown']:.2f}x  served corrupt "
                f"{int(metrics['served_corrupted_defended'])}/"
                f"{int(metrics['served_corrupted_undefended'])} (def/undef)"
            )
        if "energy_per_inference_ratio" in metrics:
            highlights.append(
                f"tight/loose energy {metrics['energy_per_inference_ratio']:.2f}x"
                f"  p99 {metrics['p99_inflation']:.2f}x"
            )
        if "per_request_cost_ratio_256_vs_16" in metrics:
            highlights.append(
                f"256/16 cost {metrics['per_request_cost_ratio_256_vs_16']:.2f}x"
            )
        if "per_request_cost_ratio_2048_vs_16" in metrics:
            highlights.append(
                f"2048/16 cost {metrics['per_request_cost_ratio_2048_vs_16']:.2f}x"
            )
        print(f"{bench['name']:<{width}}  {bench['wall_seconds']:8.3f} s  "
              + "  ".join(highlights))
    print(f"wrote {output}")

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_regressions(report, baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"all {len(baseline['gates'])} gates passed vs {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
