"""Fit the per-device calibration factors to the paper's Fig. 13 shape.

This is the offline tool that produced the constants committed in
``repro/perfmodel/calibration.py`` (see docs/calibration.md for the
methodology). It performs coordinate descent on the compute-efficiency
knobs and per-kernel overheads, with the memory-side story (bandwidth
efficiency, fusion effectiveness) FROZEN at architecture-motivated values
so the optimizer cannot flatten the differentiation the paper's SRResnet
result depends on.

Run: ``python tools/calibrate.py`` (takes ~1 minute; prints the fitted
dicts to paste back into calibration.py).
"""

import math
import sys

import repro.perfmodel.calibration  # noqa: F401  (loads the module object)

calmod = sys.modules["repro.perfmodel.calibration"]

from dataclasses import replace  # noqa: E402

from repro.models import MODEL_NAMES  # noqa: E402
from repro.perfmodel.latency import estimate_model  # noqa: E402

# Paper-derived per-model targets. Fig. 13 only quantifies the geomeans
# (2.22x / 1.16x) and SRResnet (4.34x / 2.37x); the rest are chosen to
# respect the qualitative statements (detection sweep, A10 wins a minority)
# while hitting the geomeans.
TARGET_T4 = dict(yolo_v3=2.5, centernet=2.4, retinaface=2.8, vgg16=1.6,
                 resnet50=1.9, inception_v4=1.55, unet=2.4, srresnet=4.34,
                 bert_large=1.8, conformer=2.0)
TARGET_A10 = dict(yolo_v3=1.32, centernet=1.30, retinaface=1.40, vgg16=0.95,
                  resnet50=1.05, inception_v4=0.88, unet=1.28, srresnet=2.37,
                  bert_large=0.93, conformer=1.10)
WEIGHT = dict(srresnet=3.0, yolo_v3=2.0, unet=2.0, bert_large=1.5,
              conformer=1.5)

# Architecture-motivated, NOT optimized (docs/calibration.md):
FROZEN = {
    "i20": dict(bandwidth_efficiency=0.80, fusion_effectiveness=0.95),
    "t4": dict(bandwidth_efficiency=0.66, fusion_effectiveness=0.55),
    "a10": dict(bandwidth_efficiency=0.70, fusion_effectiveness=0.58),
}

CATEGORIES = ("conv", "gemm", "elementwise", "softmax", "norm", "pool",
              "activation", "reduce", "layout", "embedding")


def latency(model, device):
    return estimate_model(model, device).latency_ns


def loss():
    total = 0.0
    for model in MODEL_NAMES:
        weight = WEIGHT.get(model, 1.0)
        i20 = latency(model, "i20")
        total += weight * math.log(
            (latency(model, "t4") / i20) / TARGET_T4[model]
        ) ** 2
        total += weight * math.log(
            (latency(model, "a10") / i20) / TARGET_A10[model]
        ) ** 2
    return total


def get(device, knob):
    entry = calmod._CALIBRATIONS[device]
    if knob == "kernel_overhead_ns":
        return entry.kernel_overhead_ns
    return entry.compute_efficiency[knob]


def set_(device, knob, value):
    entry = calmod._CALIBRATIONS[device]
    if knob == "kernel_overhead_ns":
        calmod._CALIBRATIONS[device] = replace(entry, kernel_overhead_ns=value)
    else:
        efficiencies = dict(entry.compute_efficiency)
        efficiencies[knob] = value
        calmod._CALIBRATIONS[device] = replace(
            entry, compute_efficiency=efficiencies
        )


def bound(device, knob, value):
    if knob == "kernel_overhead_ns":
        low, high = (1000.0, 3500.0) if device == "i20" else (2000.0, 12000.0)
        return min(max(value, low), high)
    return min(max(value, 0.08), 0.75)


def main():
    for device, overrides in FROZEN.items():
        calmod._CALIBRATIONS[device] = replace(
            calmod._CALIBRATIONS[device], **overrides
        )
    knobs = [
        (device, knob)
        for device in ("t4", "a10", "i20")
        for knob in CATEGORIES + ("kernel_overhead_ns",)
    ]
    best = loss()
    print(f"initial loss {best:.3f}")
    sweep = 0
    for sweep in range(40):
        improved = False
        for device, knob in knobs:
            base = get(device, knob)
            for factor in (1.2, 0.83, 1.07, 0.93, 1.02, 0.98):
                trial = bound(device, knob, base * factor)
                if trial == base:
                    continue
                set_(device, knob, trial)
                candidate = loss()
                if candidate < best - 1e-9:
                    best, base, improved = candidate, trial, True
                else:
                    set_(device, knob, base)
        if not improved:
            break
    print(f"final loss {best:.3f} after {sweep + 1} sweeps\n")

    for device in ("t4", "a10", "i20"):
        entry = calmod._CALIBRATIONS[device]
        rounded = {k: round(v, 3) for k, v in entry.compute_efficiency.items()}
        print(f"{device}: {rounded}")
        print(f"    overhead {entry.kernel_overhead_ns:.0f} ns")

    ratios_t4, ratios_a10 = [], []
    for model in MODEL_NAMES:
        i20 = latency(model, "i20")
        t4 = latency(model, "t4") / i20
        a10 = latency(model, "a10") / i20
        ratios_t4.append(t4)
        ratios_a10.append(a10)
        print(f"{model:<14} vsT4={t4:5.2f} (tgt {TARGET_T4[model]:4.2f})  "
              f"vsA10={a10:5.2f} (tgt {TARGET_A10[model]:4.2f})")
    geo_t4 = math.exp(sum(map(math.log, ratios_t4)) / len(ratios_t4))
    geo_a10 = math.exp(sum(map(math.log, ratios_a10)) / len(ratios_a10))
    print(f"geomeans: vsT4={geo_t4:.3f} (paper 2.22)  "
          f"vsA10={geo_a10:.3f} (paper 1.16)")


if __name__ == "__main__":
    main()
