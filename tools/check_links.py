"""Check relative links in the repo's markdown docs.

Scans the given markdown files (default: README.md and docs/*.md) for
inline links and images, resolves every relative target against the
file that contains it, and exits non-zero listing any that point at a
file which does not exist. External links (http/https/mailto) and
pure in-page anchors (#section) are skipped; fragments on relative
links are stripped before the existence check.

Usage::

    python tools/check_links.py            # README.md + docs/*.md
    python tools/check_links.py docs/*.md  # explicit file list
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# inline markdown links/images: [text](target) / ![alt](target)
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def iter_links(path: Path):
    """Yield (line_number, target) for every inline link in *path*."""
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield number, match.group(1)


def dangling_links(path: Path) -> list[tuple[int, str]]:
    """Relative links in *path* whose targets do not exist on disk."""
    broken = []
    for number, target in iter_links(path):
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            broken.append((number, target))
    return broken


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        root = Path(__file__).resolve().parent.parent
        files = [root / "README.md", *sorted((root / "docs").glob("*.md"))]

    missing = [path for path in files if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such file: {path}", file=sys.stderr)
        return 2

    failures = 0
    for path in files:
        for number, target in dangling_links(path):
            print(f"{path}:{number}: dangling link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} dangling link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
